// The flight recorder: a bounded window of recent spans plus a metrics
// snapshot, dumped to disk when something interesting happens — the
// admission controller engaging shed, a drain, a power-cut remount — or
// on demand from the admin surface. The point is the black-box property:
// when an operator asks "what was the stack doing when it started
// shedding", the answer is already on disk, attributed span by span.
package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// DefaultFlightSpans bounds how many trailing spans a dump keeps.
const DefaultFlightSpans = 4096

// DefaultFlightFiles bounds how many dump files the recorder retains
// before deleting the oldest.
const DefaultFlightFiles = 16

// FlightRecord is one dump: the reason it was taken, the tail of the
// span ring, and a point-in-time metrics snapshot. The "spans" field is
// an array, which is how LoadSpans tells a flight record from a JSONL
// trace header.
type FlightRecord struct {
	Reason string `json:"reason"`
	Seq    int    `json:"seq"`
	// WallTime is the host wall-clock time of the dump (RFC3339); the
	// spans inside are virtual-time, as everywhere else.
	WallTime string `json:"wall_time,omitempty"`
	// Dropped is how many spans the ring had overwritten in total; the
	// retained window below is the newest tail.
	Dropped int64    `json:"dropped"`
	Spans   []Span   `json:"spans"`
	Metrics Snapshot `json:"metrics"`
	// Events is the cluster event journal retained at dump time (when one
	// is attached to the observer), so the control-plane history — the
	// cordon that caused the latency spike the spans show — rides along.
	Events        []Event `json:"events,omitempty"`
	EventsDropped int64   `json:"events_dropped,omitempty"`
}

// FlightRecorder dumps flight records into a directory. Safe for
// concurrent use; dumps are serialized.
type FlightRecorder struct {
	o   *Observer
	dir string

	mu       sync.Mutex
	seq      int
	files    []string
	maxSpans int
	maxFiles int
}

// NewFlightRecorder returns a recorder dumping o's telemetry into dir
// (created if missing). maxSpans bounds the span tail per dump and
// maxFiles the retained dump files; <=0 selects the defaults.
func NewFlightRecorder(o *Observer, dir string, maxSpans, maxFiles int) (*FlightRecorder, error) {
	if o == nil {
		return nil, fmt.Errorf("obs: flight recorder needs an observer")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if maxSpans <= 0 {
		maxSpans = DefaultFlightSpans
	}
	if maxFiles <= 0 {
		maxFiles = DefaultFlightFiles
	}
	return &FlightRecorder{o: o, dir: dir, maxSpans: maxSpans, maxFiles: maxFiles}, nil
}

// Dump writes one flight record and returns its path, pruning old dumps
// past the file bound.
func (fr *FlightRecorder) Dump(reason string) (string, error) {
	if fr == nil {
		return "", nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.seq++
	rec := FlightRecord{
		Reason:   reason,
		Seq:      fr.seq,
		WallTime: time.Now().UTC().Format(time.RFC3339),
	}
	if t := fr.o.Tracer; t != nil {
		spans := t.Spans()
		if len(spans) > fr.maxSpans {
			rec.Dropped = t.Dropped() + int64(len(spans)-fr.maxSpans)
			spans = spans[len(spans)-fr.maxSpans:]
		} else {
			rec.Dropped = t.Dropped()
		}
		rec.Spans = spans
	}
	if r := fr.o.Registry; r != nil {
		rec.Metrics = r.Snapshot()
	}
	if l := fr.o.EventLog(); l != nil {
		rec.Events = l.Events()
		rec.EventsDropped = l.Dropped()
	}
	path := filepath.Join(fr.dir, fmt.Sprintf("flight-%04d-%s.json", fr.seq, sanitizeReason(reason)))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	fr.files = append(fr.files, path)
	for len(fr.files) > fr.maxFiles {
		os.Remove(fr.files[0])
		fr.files = fr.files[1:]
	}
	return path, nil
}

// sanitizeReason keeps dump filenames portable.
func sanitizeReason(reason string) string {
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason) && len(out) < 32; i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '-')
		}
	}
	if len(out) == 0 {
		return "dump"
	}
	return string(out)
}

// ReadFlightRecord loads a dump written by Dump.
func ReadFlightRecord(path string) (*FlightRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rec FlightRecord
	if err := json.NewDecoder(f).Decode(&rec); err != nil {
		return nil, fmt.Errorf("obs: flight record %s: %w", path, err)
	}
	return &rec, nil
}

// SetFlightRecorder attaches a recorder to the observer (nil detaches),
// so subsystems holding only the observer — the power-cut remount path,
// the admin surface — can dump incidents without extra plumbing.
func (o *Observer) SetFlightRecorder(fr *FlightRecorder) {
	if o == nil {
		return
	}
	o.flight.Store(fr)
}

// FlightRecorder reports the attached recorder, or nil.
func (o *Observer) FlightRecorder() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.flight.Load()
}
