package obs

import (
	"testing"

	"ssmobile/internal/sim"
)

func TestRateSamplerBasicWindowedRate(t *testing.T) {
	s := NewRateSampler(16, 10*sim.Second)
	// One increment per second, cumulative 1..20.
	for i := 1; i <= 20; i++ {
		s.Observe(sim.Time(i)*sim.Time(sim.Second), int64(i))
	}
	now := sim.Time(20 * sim.Second)
	// Value at now = 20, value at now-10s = 10 → 1 per second.
	if got := s.Rate(now); got != 1.0 {
		t.Fatalf("Rate = %v, want 1.0", got)
	}
}

func TestRateSamplerEarlyLife(t *testing.T) {
	s := NewRateSampler(16, sim.Minute)
	s.Observe(sim.Time(sim.Second), 5)
	s.Observe(sim.Time(2*sim.Second), 10)
	// Only two seconds have elapsed: the divisor is elapsed time, not the
	// full window, so the early rate is 10/2s = 5/s, not 10/60s.
	if got := s.Rate(sim.Time(2 * sim.Second)); got != 5.0 {
		t.Fatalf("early-life Rate = %v, want 5.0", got)
	}
}

func TestRateSamplerIdleDecaysToZero(t *testing.T) {
	s := NewRateSampler(16, 10*sim.Second)
	s.Observe(sim.Time(sim.Second), 100)
	// Long after the burst, the whole window is quiet.
	if got := s.Rate(sim.Time(5 * sim.Minute)); got != 0 {
		t.Fatalf("idle Rate = %v, want 0", got)
	}
}

func TestRateSamplerWraparound(t *testing.T) {
	// Capacity 4 with many more samples than slots: the ring must evict
	// oldest-first and keep answering with the retained suffix.
	s := NewRateSampler(4, 10*sim.Second)
	for i := 1; i <= 100; i++ {
		s.Observe(sim.Time(i)*sim.Time(sim.Second), int64(i)*10)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	// Retained samples are t=97..100s (values 970..1000). The window's
	// left edge (t=90s) predates them all, so the baseline falls back to
	// the oldest retained value: (1000-970)/10s — an under-report of the
	// exact (1000-900)/10s, never an over-report.
	got := s.Rate(sim.Time(100 * sim.Second))
	want := 30.0 / 10.0
	if got != want {
		t.Fatalf("wrapped Rate = %v, want %v", got, want)
	}
	exact := 100.0 / 10.0
	if got > exact {
		t.Fatalf("wrapped Rate %v over-reports the exact rate %v", got, exact)
	}
}

func TestRateSamplerMonotonicity(t *testing.T) {
	s := NewRateSampler(8, sim.Minute)
	s.Observe(sim.Time(10*sim.Second), 10)
	// A sample from the past is dropped, not reordered.
	s.Observe(sim.Time(5*sim.Second), 99)
	if s.Len() != 1 {
		t.Fatalf("Len after stale sample = %d, want 1", s.Len())
	}
	// A sample at the same instant replaces the newest value.
	s.Observe(sim.Time(10*sim.Second), 12)
	if s.Len() != 1 {
		t.Fatalf("Len after same-instant sample = %d, want 1", s.Len())
	}
	if got := s.Rate(sim.Time(10 * sim.Second)); got != 1.2 {
		t.Fatalf("Rate after same-instant replace = %v, want 1.2 (12 over 10s)", got)
	}
}

func TestRateSamplerZeroValueAndNil(t *testing.T) {
	var s *RateSampler
	s.Observe(sim.Time(sim.Second), 1) // must not panic
	if got := s.Rate(sim.Time(sim.Second)); got != 0 {
		t.Fatalf("nil Rate = %v, want 0", got)
	}
	e := NewRateSampler(0, 0) // defaults
	if e.Window() != sim.Minute {
		t.Fatalf("default window = %v, want 1m", e.Window())
	}
	if got := e.Rate(sim.Time(sim.Hour)); got != 0 {
		t.Fatalf("empty Rate = %v, want 0", got)
	}
}

func TestRateSamplerZeroAllocSteadyState(t *testing.T) {
	// The sampler sits on the flash program/erase path: once the ring is
	// warm, Observe and Rate must not allocate.
	s := NewRateSampler(64, sim.Minute)
	now := sim.Time(0)
	cum := int64(0)
	for i := 0; i < 128; i++ {
		now = now.Add(sim.Millisecond)
		cum++
		s.Observe(now, cum)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		now = now.Add(sim.Millisecond)
		cum++
		s.Observe(now, cum)
		_ = s.Rate(now)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Observe+Rate allocates %v per op, want 0", allocs)
	}
}

// BenchmarkRateSamplerObserve guards the sampler's cost and allocation
// count; CI runs it with -benchmem next to the nil-observer span bench.
func BenchmarkRateSamplerObserve(b *testing.B) {
	s := NewRateSampler(256, sim.Minute)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(sim.Time(i)*sim.Time(sim.Microsecond), int64(i))
	}
}

// BenchmarkRateSamplerRate measures the windowed-rate query a scrape or
// health report pays per gauge collection.
func BenchmarkRateSamplerRate(b *testing.B) {
	s := NewRateSampler(256, sim.Minute)
	for i := 0; i < 1024; i++ {
		s.Observe(sim.Time(i)*sim.Time(sim.Millisecond), int64(i))
	}
	now := sim.Time(1024 * sim.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Rate(now)
	}
}
