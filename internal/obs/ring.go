package obs

import "ssmobile/internal/sim"

// RateSampler turns a cumulative counter into a windowed rate using a
// bounded ring of (virtual time, value) samples.
//
// The registry's counters are cumulative-only: perfect for totals,
// useless for "how fast is the device burning erase cycles RIGHT NOW".
// A layer that owns a counter calls Observe(now, cumulative) at every
// increment; Rate(now) then reports the increase per virtual second over
// the trailing window. Because Observe is called exactly when the
// counter steps, the cumulative value at any instant t is the value of
// the last sample at or before t, and the windowed rate is exact as long
// as the ring still holds a sample at or before the window's left edge.
// A full ring evicts oldest-first, which can only under-report the rate
// (the evicted increments fall out of the numerator); size the capacity
// to the expected increments per window to avoid that.
//
// The sampler is deliberately allocation-free after construction — it
// sits on the flash program/erase path, which every experiment pays —
// and is not safe for concurrent use: like sim.Clock it belongs to the
// single simulation thread. Export a rate through a GaugeFunc for scrape
// paths; gauge collection reads a point-in-time value under the
// registry's locking.
type RateSampler struct {
	window sim.Duration
	ring   []rateSample
	head   int // index of the next slot to write
	n      int // number of valid samples
}

type rateSample struct {
	t sim.Time
	v int64
}

// NewRateSampler returns a sampler holding up to capacity samples
// (<=0 selects 256) over the given window (<=0 selects one minute of
// virtual time).
func NewRateSampler(capacity int, window sim.Duration) *RateSampler {
	if capacity <= 0 {
		capacity = 256
	}
	if window <= 0 {
		window = sim.Minute
	}
	return &RateSampler{window: window, ring: make([]rateSample, capacity)}
}

// Window reports the sampler's window.
func (s *RateSampler) Window() sim.Duration { return s.window }

// Len reports the number of retained samples.
func (s *RateSampler) Len() int { return s.n }

// Observe records the counter's cumulative value at virtual time now.
// Virtual time is monotone, so a sample earlier than the newest one is
// dropped; a sample at the same instant replaces the newest (the counter
// stepped twice in zero time — only the final value matters). Nil-safe.
func (s *RateSampler) Observe(now sim.Time, cum int64) {
	if s == nil {
		return
	}
	if s.n > 0 {
		last := (s.head - 1 + len(s.ring)) % len(s.ring)
		if now < s.ring[last].t {
			return
		}
		if now == s.ring[last].t {
			s.ring[last].v = cum
			return
		}
	}
	s.ring[s.head] = rateSample{t: now, v: cum}
	s.head = (s.head + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
}

// Rate reports the counter's increase per virtual second over the
// trailing window ending at now: (value at now − value at now−window)
// ÷ window. Before one full window has elapsed the divisor is now
// itself, so early rates are not diluted by time that never existed.
// With no samples, or none inside the window, the rate is zero. Nil-safe.
func (s *RateSampler) Rate(now sim.Time) float64 {
	if s == nil || s.n == 0 {
		return 0
	}
	span := s.window
	if sim.Duration(now) < span {
		span = sim.Duration(now)
	}
	if span <= 0 {
		return 0
	}
	cutoff := now.Add(-span)
	// Oldest retained sample is at head-n; scan forward for the last
	// sample at or before the cutoff (the counter's value at the window's
	// left edge) and the newest sample overall (its value at now).
	oldest := (s.head - s.n + len(s.ring)*2) % len(s.ring)
	base := int64(0)
	baseSeen := false
	var newest int64
	for i := 0; i < s.n; i++ {
		sm := s.ring[(oldest+i)%len(s.ring)]
		if sm.t <= cutoff {
			base = sm.v
			baseSeen = true
		}
		newest = sm.v
	}
	if !baseSeen {
		// The window's left edge predates every retained sample: either
		// the device is young (value was 0 at the cutoff) or the ring
		// evicted the baseline (under-report, bounded by capacity).
		base = s.ring[oldest].v
		if sim.Duration(now) <= s.window {
			base = 0
		}
	}
	if newest <= base {
		return 0
	}
	return float64(newest-base) / span.Seconds()
}
