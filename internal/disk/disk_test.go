package disk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"ssmobile/internal/device"
	"ssmobile/internal/sim"
)

func newKittyHawk(t *testing.T) (*Device, *sim.Clock, *sim.EnergyMeter) {
	t.Helper()
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	d, err := New(Config{
		CapacityBytes:   20 << 20,
		Params:          device.KittyHawk,
		SpindownTimeout: 5 * sim.Second,
	}, clock, meter)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, clock, meter
}

func TestConfigValidation(t *testing.T) {
	clock, meter := sim.NewClock(), sim.NewEnergyMeter()
	if _, err := New(Config{CapacityBytes: 100, Params: device.KittyHawk}, clock, meter); err == nil {
		t.Error("sub-cylinder capacity accepted")
	}
	if _, err := New(Config{CapacityBytes: 1 << 20, Params: device.NECDram}, clock, meter); err == nil {
		t.Error("DRAM params accepted for disk")
	}
}

func TestGeometry(t *testing.T) {
	d, _, _ := newKittyHawk(t)
	if d.Cylinders() <= 0 {
		t.Fatal("no cylinders")
	}
	// Capacity rounds to whole cylinders and stays close to the request.
	if d.Capacity() > 20<<20 || d.Capacity() < (20<<20)-int64(d.bytesPerCylinder()) {
		t.Fatalf("capacity %d not within one cylinder of 20MB", d.Capacity())
	}
}

func TestWriteRead(t *testing.T) {
	d, _, _ := newKittyHawk(t)
	msg := []byte("magnetic media")
	if _, err := d.Write(1<<20, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := d.Read(1<<20, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q", got)
	}
}

func TestOutOfRange(t *testing.T) {
	d, _, _ := newKittyHawk(t)
	if _, err := d.Read(d.Capacity(), make([]byte, 1)); !errors.Is(err, ErrOutOfRange) {
		t.Error("read past end accepted")
	}
	if _, err := d.Write(-5, []byte{1}); !errors.Is(err, ErrOutOfRange) {
		t.Error("negative write accepted")
	}
}

func TestSeekCostGrowsWithDistance(t *testing.T) {
	d, _, _ := newKittyHawk(t)
	// Prime the head at cylinder 0.
	if _, err := d.Read(0, make([]byte, SectorBytes)); err != nil {
		t.Fatal(err)
	}
	near, err := d.Read(int64(d.bytesPerCylinder()), make([]byte, SectorBytes))
	if err != nil {
		t.Fatal(err)
	}
	// Back to 0, then a far seek.
	if _, err := d.Read(0, make([]byte, SectorBytes)); err != nil {
		t.Fatal(err)
	}
	far, err := d.Read(d.Capacity()-int64(SectorBytes), make([]byte, SectorBytes))
	if err != nil {
		t.Fatal(err)
	}
	if far <= near {
		t.Errorf("far seek %v not slower than adjacent-cylinder seek %v", far, near)
	}
}

func TestSameCylinderSkipsSeek(t *testing.T) {
	d, _, _ := newKittyHawk(t)
	if _, err := d.Read(0, make([]byte, SectorBytes)); err != nil {
		t.Fatal(err)
	}
	before := d.Stats().SeekNs
	if _, err := d.Read(SectorBytes, make([]byte, SectorBytes)); err != nil {
		t.Fatal(err)
	}
	if d.Stats().SeekNs != before {
		t.Error("same-cylinder access paid a seek")
	}
}

func TestDiskMuchSlowerThanFlashRead(t *testing.T) {
	// The premise of the whole paper: a random disk read pays mechanical
	// latency that flash does not.
	d, _, _ := newKittyHawk(t)
	if _, err := d.Read(0, make([]byte, SectorBytes)); err != nil {
		t.Fatal(err)
	}
	lat, err := d.Read(10<<20, make([]byte, 8192))
	if err != nil {
		t.Fatal(err)
	}
	flashLat := sim.Duration(device.IntelFlash.ReadLatencyNs(8192))
	if lat < 5*flashLat {
		t.Errorf("disk random 8KB read %v, flash %v; disk should be much slower", lat, flashLat)
	}
}

func TestSpindownAndSpinup(t *testing.T) {
	d, clock, _ := newKittyHawk(t)
	if _, err := d.Read(0, make([]byte, SectorBytes)); err != nil {
		t.Fatal(err)
	}
	busyLat, err := d.Read(0, make([]byte, SectorBytes))
	if err != nil {
		t.Fatal(err)
	}
	// Idle past the spindown timeout.
	clock.Advance(sim.Minute)
	coldLat, err := d.Read(0, make([]byte, SectorBytes))
	if err != nil {
		t.Fatal(err)
	}
	spin := sim.Duration(device.KittyHawk.SpinupNs)
	if coldLat < busyLat+spin/2 {
		t.Errorf("cold read %v should pay spin-up over warm read %v", coldLat, busyLat)
	}
	if d.Stats().Spinups != 1 {
		t.Errorf("spinups = %d, want 1", d.Stats().Spinups)
	}
}

func TestSpindownSavesEnergy(t *testing.T) {
	run := func(timeout sim.Duration) sim.Energy {
		clock := sim.NewClock()
		meter := sim.NewEnergyMeter()
		d, err := New(Config{CapacityBytes: 20 << 20, Params: device.KittyHawk, SpindownTimeout: timeout}, clock, meter)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Read(0, make([]byte, SectorBytes)); err != nil {
			t.Fatal(err)
		}
		clock.Advance(sim.Hour)
		d.ChargeIdle()
		return meter.Total()
	}
	withSpindown := run(5 * sim.Second)
	alwaysOn := run(0)
	if withSpindown >= alwaysOn {
		t.Errorf("spindown energy %v not below always-on %v", withSpindown, alwaysOn)
	}
}

func TestSpunDownState(t *testing.T) {
	d, clock, _ := newKittyHawk(t)
	if _, err := d.Read(0, make([]byte, SectorBytes)); err != nil {
		t.Fatal(err)
	}
	if d.SpunDown() {
		t.Fatal("drive spun down immediately after access")
	}
	clock.Advance(sim.Minute)
	d.ChargeIdle()
	if !d.SpunDown() {
		t.Fatal("drive still spinning after idle timeout")
	}
}

func TestStats(t *testing.T) {
	d, _, _ := newKittyHawk(t)
	if _, err := d.Write(0, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(5<<20, make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Writes != 1 || s.BytesWritten != 1024 || s.Reads != 1 || s.BytesRead != 2048 {
		t.Fatalf("stats %+v", s)
	}
	if s.RotateNs <= 0 {
		t.Error("no rotational latency recorded")
	}
}

// Property: the disk stores bytes faithfully regardless of access pattern.
func TestDiskReadYourWritesProperty(t *testing.T) {
	f := func(writes map[uint16]byte) bool {
		clock := sim.NewClock()
		d, err := New(Config{CapacityBytes: 1 << 20, Params: device.Fujitsu}, clock, sim.NewEnergyMeter())
		if err != nil {
			return false
		}
		for off, val := range writes {
			if _, err := d.Write(int64(off), []byte{val}); err != nil {
				return false
			}
		}
		buf := make([]byte, 1)
		for off, val := range writes {
			if _, err := d.Read(int64(off), buf); err != nil {
				return false
			}
			if buf[0] != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
