// Package disk simulates the small magnetic disk drives the paper argues
// flash will displace: the Hewlett-Packard KittyHawk 1.3-inch drive and
// the Fujitsu M2633 2.5-inch drive.
//
// The model is a classic mechanical one — seek time linear in cylinder
// distance (calibrated so the average seek covers one third of the
// cylinders), half-rotation average rotational latency, streaming
// transfer — plus the mobile-specific power management the paper's energy
// comparisons need: the drive spins down after an idle timeout and pays a
// spin-up delay (and energy surge) on the next access.
package disk

import (
	"errors"
	"fmt"

	"ssmobile/internal/device"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

// SectorBytes is the fixed sector size of the simulated drives.
const SectorBytes = 512

// ErrOutOfRange reports an access beyond the end of the drive.
var ErrOutOfRange = errors.New("disk: address out of range")

// Config fixes the geometry, part parameters and power management of a
// simulated drive.
type Config struct {
	// CapacityBytes is the drive size; rounded down to whole cylinders.
	CapacityBytes int64
	// Params supplies the mechanical and power figures; typically
	// device.KittyHawk or device.Fujitsu.
	Params device.Params
	// SectorsPerTrack and Heads fix the cylinder size.
	SectorsPerTrack int
	Heads           int
	// SpindownTimeout is how long the drive idles before spinning down to
	// save power; zero disables spindown.
	SpindownTimeout sim.Duration
	// MeterCategory defaults to "disk".
	MeterCategory string
	// Obs receives the drive's metrics and op spans; nil falls back to
	// obs.Default().
	Obs *obs.Observer
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CapacityBytes < int64(c.bytesPerCylinderRaw()) {
		return fmt.Errorf("disk: capacity %d below one cylinder", c.CapacityBytes)
	}
	if c.Params.Class != device.Disk {
		return fmt.Errorf("disk: params %q are %v, not disk", c.Params.Name, c.Params.Class)
	}
	if c.SectorsPerTrack <= 0 || c.Heads <= 0 {
		return fmt.Errorf("disk: bad geometry %d sectors/track × %d heads", c.SectorsPerTrack, c.Heads)
	}
	return nil
}

func (c Config) bytesPerCylinderRaw() int {
	return c.SectorsPerTrack * c.Heads * SectorBytes
}

// Stats aggregates the drive's operation counters.
type Stats struct {
	Reads, Writes           int64
	BytesRead, BytesWritten int64
	SeekNs, RotateNs        int64
	Spinups                 int64
}

// Device is one simulated drive. Not safe for concurrent use.
type Device struct {
	cfg   Config
	clock *sim.Clock
	meter *sim.EnergyMeter

	data      []byte
	cylinders int
	headCyl   int

	spunDown    bool
	lastEnd     sim.Time // when the last operation finished
	lastCharged sim.Time // power charged through this instant

	obs                     *obs.Observer
	reads, writes           *obs.Counter
	bytesRead, bytesWritten *obs.Counter
	seekNs, rotateNs        *obs.Counter
	spinups                 *obs.Counter
}

// New builds a drive with zeroed media, head at cylinder 0, spinning.
func New(cfg Config, clock *sim.Clock, meter *sim.EnergyMeter) (*Device, error) {
	if cfg.SectorsPerTrack == 0 {
		cfg.SectorsPerTrack = 32
	}
	if cfg.Heads == 0 {
		cfg.Heads = 2
	}
	if cfg.MeterCategory == "" {
		cfg.MeterCategory = "disk"
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cyls := int(cfg.CapacityBytes / int64(cfg.bytesPerCylinderRaw()))
	o := obs.Or(cfg.Obs)
	lbl := func(op string) obs.Labels {
		return obs.Labels{"layer": "disk", "device": cfg.MeterCategory, "op": op}
	}
	return &Device{
		cfg:          cfg,
		clock:        clock,
		meter:        meter,
		data:         make([]byte, int64(cyls)*int64(cfg.bytesPerCylinderRaw())),
		cylinders:    cyls,
		obs:          o,
		reads:        o.Counter("ops_total", lbl("read")),
		writes:       o.Counter("ops_total", lbl("write")),
		bytesRead:    o.Counter("bytes_total", lbl("read")),
		bytesWritten: o.Counter("bytes_total", lbl("write")),
		seekNs:       o.Counter("seek_ns_total", lbl("access")),
		rotateNs:     o.Counter("rotate_ns_total", lbl("access")),
		spinups:      o.Counter("spinups_total", obs.Labels{"layer": "disk", "device": cfg.MeterCategory}),
	}, nil
}

// Capacity reports the usable drive size (whole cylinders).
func (d *Device) Capacity() int64 { return int64(len(d.data)) }

// Cylinders reports the cylinder count.
func (d *Device) Cylinders() int { return d.cylinders }

// Config returns the drive configuration.
func (d *Device) Config() Config { return d.cfg }

func (d *Device) bytesPerCylinder() int { return d.cfg.bytesPerCylinderRaw() }

func (d *Device) cylinderOf(addr int64) int { return int(addr / int64(d.bytesPerCylinder())) }

// seekDuration models seek time as linear in distance, calibrated so that
// the datasheet average seek corresponds to a one-third-stroke move.
func (d *Device) seekDuration(from, to int) sim.Duration {
	if from == to {
		return 0
	}
	dist := from - to
	if dist < 0 {
		dist = -dist
	}
	third := float64(d.cylinders) / 3
	ttk := d.cfg.Params.TrackToTrackNs
	avg := d.cfg.Params.AvgSeekNs
	ns := ttk + (avg-ttk)*float64(dist-1)/third
	return sim.Duration(ns)
}

// halfRotation is the average rotational latency.
func (d *Device) halfRotation() sim.Duration {
	secPerRev := 60.0 / d.cfg.Params.RotationalRPM
	return sim.Duration(secPerRev / 2 * 1e9)
}

func (d *Device) transfer(n int) sim.Duration {
	return sim.Duration(float64(n) / (d.cfg.Params.TransferMBPerSec * 1e6) * 1e9)
}

// settlePower charges idle/sleep power for the span since the last charge
// and applies the spindown policy. Called at the start of every operation
// and by ChargeIdle.
func (d *Device) settlePower(now sim.Time) {
	if now <= d.lastCharged {
		return
	}
	gap := now.Sub(d.lastCharged)
	cat := d.cfg.MeterCategory + "-idle"
	switch {
	case d.spunDown:
		d.meter.Charge(cat, sim.EnergyFor(d.cfg.Params.SleepMilliwatts, gap))
	case d.cfg.SpindownTimeout > 0 && gap > d.cfg.SpindownTimeout:
		// Spinning for the timeout, asleep for the rest.
		d.meter.Charge(cat, sim.EnergyFor(d.cfg.Params.IdleMilliwatts, d.cfg.SpindownTimeout))
		d.meter.Charge(cat, sim.EnergyFor(d.cfg.Params.SleepMilliwatts, gap-d.cfg.SpindownTimeout))
		d.spunDown = true
	default:
		d.meter.Charge(cat, sim.EnergyFor(d.cfg.Params.IdleMilliwatts, gap))
	}
	d.lastCharged = now
}

// access performs the mechanical part common to reads and writes and
// returns the total latency, which it has already advanced the clock by.
func (d *Device) access(addr int64, n int) sim.Duration {
	now := d.clock.Now()
	d.settlePower(now)

	var total sim.Duration
	if d.spunDown {
		spin := sim.Duration(d.cfg.Params.SpinupNs)
		total += spin
		d.spunDown = false
		d.spinups.Inc()
		// Spin-up draws roughly double active power.
		d.meter.Charge(d.cfg.MeterCategory, sim.EnergyFor(2*d.cfg.Params.ActiveMilliwatts, spin))
	}

	target := d.cylinderOf(addr)
	seek := d.seekDuration(d.headCyl, target)
	rot := d.halfRotation()
	xfer := d.transfer(n) + sim.Duration(d.cfg.Params.SetupNs)
	d.headCyl = target
	d.seekNs.Add(int64(seek))
	d.rotateNs.Add(int64(rot))

	op := seek + rot + xfer
	total += op
	d.meter.Charge(d.cfg.MeterCategory, sim.EnergyFor(d.cfg.Params.ActiveMilliwatts, op))
	d.clock.Advance(total)
	d.lastEnd = d.clock.Now()
	d.lastCharged = d.lastEnd
	return total
}

func (d *Device) checkRange(addr int64, n int) error {
	if addr < 0 || n < 0 || addr+int64(n) > d.Capacity() {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, addr, addr+int64(n), d.Capacity())
	}
	return nil
}

// Read copies len(buf) bytes at addr into buf, paying spin-up, seek,
// rotation and transfer as appropriate, and returns the latency.
func (d *Device) Read(addr int64, buf []byte) (sim.Duration, error) {
	if err := d.checkRange(addr, len(buf)); err != nil {
		return 0, err
	}
	sp := d.obs.Span(d.clock, d.meter, "disk", "read")
	defer sp.End(int64(len(buf)), nil)
	lat := d.access(addr, len(buf))
	copy(buf, d.data[addr:addr+int64(len(buf))])
	d.reads.Inc()
	d.bytesRead.Add(int64(len(buf)))
	return lat, nil
}

// Write stores p at addr with the same mechanical costs as Read.
func (d *Device) Write(addr int64, p []byte) (sim.Duration, error) {
	if err := d.checkRange(addr, len(p)); err != nil {
		return 0, err
	}
	sp := d.obs.Span(d.clock, d.meter, "disk", "write")
	defer sp.End(int64(len(p)), nil)
	lat := d.access(addr, len(p))
	copy(d.data[addr:], p)
	d.writes.Inc()
	d.bytesWritten.Add(int64(len(p)))
	return lat, nil
}

// Peek returns the byte at addr without mechanical simulation.
func (d *Device) Peek(addr int64) byte { return d.data[addr] }

// SpunDown reports whether the drive is currently spun down. The state
// only updates when power is settled, so callers should ChargeIdle first.
func (d *Device) SpunDown() bool { return d.spunDown }

// ChargeIdle settles idle/sleep power up to the present.
func (d *Device) ChargeIdle() { d.settlePower(d.clock.Now()) }

// Stats summarises the drive counters.
func (d *Device) Stats() Stats {
	return Stats{
		Reads:        d.reads.Value(),
		Writes:       d.writes.Value(),
		BytesRead:    d.bytesRead.Value(),
		BytesWritten: d.bytesWritten.Value(),
		SeekNs:       d.seekNs.Value(),
		RotateNs:     d.rotateNs.Value(),
		Spinups:      d.spinups.Value(),
	}
}
