package vm

import (
	"errors"
	"fmt"

	"ssmobile/internal/sim"
)

// ErrSwapFull reports swap-space exhaustion.
var ErrSwapFull = errors.New("vm: swap space full")

// BlockDevice is the device interface the swapper pages against. Both
// disk.Device and dram.Device satisfy it, so the same VM can model a
// conventional disk-paging machine or a memory-to-memory migration.
type BlockDevice interface {
	Read(addr int64, buf []byte) (sim.Duration, error)
	Write(addr int64, p []byte) (sim.Duration, error)
}

// DeviceSwapper implements Swapper over a contiguous region of a block
// device, with slot-granularity allocation.
type DeviceSwapper struct {
	dev       BlockDevice
	base      int64
	slotBytes int
	freeSlots []int64
	inUse     map[int64]bool
}

// NewDeviceSwapper builds a swapper over [base, base+size) of dev, divided
// into slots of slotBytes.
func NewDeviceSwapper(dev BlockDevice, base, size int64, slotBytes int) (*DeviceSwapper, error) {
	if slotBytes <= 0 || size < int64(slotBytes) {
		return nil, fmt.Errorf("vm: swap region of %d too small for %d-byte slots", size, slotBytes)
	}
	s := &DeviceSwapper{dev: dev, base: base, slotBytes: slotBytes, inUse: make(map[int64]bool)}
	for slot := size/int64(slotBytes) - 1; slot >= 0; slot-- {
		s.freeSlots = append(s.freeSlots, slot)
	}
	return s, nil
}

// SlotsFree reports the remaining capacity in slots.
func (s *DeviceSwapper) SlotsFree() int { return len(s.freeSlots) }

// PageOut stores data into a fresh slot.
func (s *DeviceSwapper) PageOut(data []byte) (int64, error) {
	if len(data) > s.slotBytes {
		return 0, fmt.Errorf("vm: page of %d exceeds slot size %d", len(data), s.slotBytes)
	}
	n := len(s.freeSlots)
	if n == 0 {
		return 0, ErrSwapFull
	}
	slot := s.freeSlots[n-1]
	s.freeSlots = s.freeSlots[:n-1]
	s.inUse[slot] = true
	if _, err := s.dev.Write(s.base+slot*int64(s.slotBytes), data); err != nil {
		return 0, err
	}
	return slot, nil
}

// PageIn retrieves a slot and releases it.
func (s *DeviceSwapper) PageIn(slot int64, buf []byte) error {
	if !s.inUse[slot] {
		return fmt.Errorf("vm: page-in of unallocated slot %d", slot)
	}
	if _, err := s.dev.Read(s.base+slot*int64(s.slotBytes), buf); err != nil {
		return err
	}
	delete(s.inUse, slot)
	s.freeSlots = append(s.freeSlots, slot)
	return nil
}
