package vm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"ssmobile/internal/device"
	"ssmobile/internal/disk"
	"ssmobile/internal/dram"
	"ssmobile/internal/flash"
	"ssmobile/internal/sim"
)

type rig struct {
	clock *sim.Clock
	meter *sim.EnergyMeter
	dram  *dram.Device
	flash *flash.Device
	vm    *VM
}

func newRig(t testing.TB, frameBytes int64, swap Swapper) *rig {
	t.Helper()
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	dr, err := dram.New(dram.Config{CapacityBytes: 2 << 20, Params: device.NECDram}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := flash.New(flash.Config{Banks: 2, BlocksPerBank: 16, BlockBytes: 64 * 1024, Params: device.IntelFlash}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(Config{PageBytes: 4096, DRAMBase: 0, DRAMBytes: frameBytes, Swap: swap}, clock, dr, fd)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, meter: meter, dram: dr, flash: fd, vm: v}
}

// stageFlash programs data into the flash device directly (as a factory
// or installer would) so it can be mapped.
func stageFlash(t testing.TB, fd *flash.Device, off int64, data []byte) {
	t.Helper()
	blockBytes := fd.BlockBytes()
	for len(data) > 0 {
		n := blockBytes - int(off%int64(blockBytes))
		if n > len(data) {
			n = len(data)
		}
		if _, err := fd.Program(off, data[:n]); err != nil {
			t.Fatal(err)
		}
		off += int64(n)
		data = data[n:]
	}
}

func TestPermString(t *testing.T) {
	if (PermRead | PermExec).String() != "r-x" {
		t.Errorf("got %q", (PermRead | PermExec).String())
	}
	if Perm(0).String() != "---" {
		t.Error("empty perm string wrong")
	}
}

func TestNewValidation(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	if _, err := New(Config{PageBytes: 0}, r.clock, r.dram, r.flash); err == nil {
		t.Error("zero page size accepted")
	}
	if _, err := New(Config{PageBytes: 4096, DRAMBase: 0, DRAMBytes: 1 << 30}, r.clock, r.dram, r.flash); err == nil {
		t.Error("pool beyond DRAM accepted")
	}
}

func TestAnonymousReadWrite(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	s := r.vm.NewSpace()
	if err := r.vm.MapAnonymous(s, 0x10000, 8*4096, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	msg := []byte("data segment contents")
	if err := r.vm.Write(s, 0x10100, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := r.vm.Read(s, 0x10100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q", got)
	}
}

func TestDemandZero(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	s := r.vm.NewSpace()
	if err := r.vm.MapAnonymous(s, 0, 4096, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if r.vm.Resident(s, 0) {
		t.Fatal("page resident before first touch")
	}
	buf := make([]byte, 16)
	if err := r.vm.Read(s, 0, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("anonymous page not zeroed")
		}
	}
	if !r.vm.Resident(s, 0) {
		t.Fatal("page not resident after touch")
	}
	if r.vm.Stats().MinorFaults != 1 {
		t.Fatalf("minor faults %d", r.vm.Stats().MinorFaults)
	}
}

func TestProtection(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	s := r.vm.NewSpace()
	if err := r.vm.MapAnonymous(s, 0, 4096, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Write(s, 0, []byte{1}); !errors.Is(err, ErrProtection) {
		t.Fatalf("write to read-only: %v", err)
	}
	if err := r.vm.Exec(s, 0, 16); !errors.Is(err, ErrProtection) {
		t.Fatalf("exec of non-exec: %v", err)
	}
	if err := r.vm.Read(s, 0x999999, make([]byte, 1)); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped read: %v", err)
	}
}

func TestSpacesAreIsolated(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	a, b := r.vm.NewSpace(), r.vm.NewSpace()
	if a.ID() == b.ID() {
		t.Fatal("spaces share an id")
	}
	if err := r.vm.MapAnonymous(a, 0, 4096, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Write(a, 0, []byte("private")); err != nil {
		t.Fatal(err)
	}
	// Space b has no mapping at 0: the same address is simply invalid
	// there. That per-space page table is the protection the paper says
	// VM exists for.
	if err := r.vm.Read(b, 0, make([]byte, 1)); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("cross-space access: %v", err)
	}
}

func TestOverlapRejected(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	s := r.vm.NewSpace()
	if err := r.vm.MapAnonymous(s, 0, 4*4096, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.MapAnonymous(s, 2*4096, 4096, PermRead); !errors.Is(err, ErrOverlap) {
		t.Fatalf("overlap: %v", err)
	}
}

func TestExecuteInPlace(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	code := bytes.Repeat([]byte{0x90}, 2*4096)
	stageFlash(t, r.flash, 0, code)
	s := r.vm.NewSpace()
	if err := r.vm.MapFlash(s, 0x400000, 0, len(code), PermRead|PermExec); err != nil {
		t.Fatal(err)
	}
	framesBefore := r.vm.FramesFree()
	if err := r.vm.Exec(s, 0x400000, len(code)); err != nil {
		t.Fatal(err)
	}
	if r.vm.FramesFree() != framesBefore {
		t.Fatal("XIP execution consumed DRAM frames")
	}
	if !r.vm.InFlash(s, 0x400000) {
		t.Fatal("code page left flash")
	}
	if r.vm.Stats().FlashReads == 0 {
		t.Fatal("no flash reads recorded")
	}
}

func TestFlashMappingAlignment(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	s := r.vm.NewSpace()
	if err := r.vm.MapFlash(s, 100, 0, 4096, PermRead); !errors.Is(err, ErrBadRange) {
		t.Fatalf("unaligned vaddr: %v", err)
	}
	if err := r.vm.MapFlash(s, 0, 100, 4096, PermRead); !errors.Is(err, ErrBadRange) {
		t.Fatalf("unaligned flash offset: %v", err)
	}
	if err := r.vm.MapFlash(s, 0, 0, 100, PermRead); !errors.Is(err, ErrBadRange) {
		t.Fatalf("unaligned length: %v", err)
	}
	if err := r.vm.MapFlash(s, 0, r.flash.Capacity(), 4096, PermRead); !errors.Is(err, ErrBadRange) {
		t.Fatalf("flash range past device: %v", err)
	}
}

func TestCopyOnWriteFromFlash(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	orig := bytes.Repeat([]byte{0xCD}, 4096)
	stageFlash(t, r.flash, 64*1024, orig)
	s := r.vm.NewSpace()
	if err := r.vm.MapFlash(s, 0x800000, 64*1024, 4096, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	// Reads come from flash, no copy.
	buf := make([]byte, 8)
	if err := r.vm.Read(s, 0x800000, buf); err != nil {
		t.Fatal(err)
	}
	if !r.vm.InFlash(s, 0x800000) {
		t.Fatal("read should not trigger the copy")
	}
	// First write triggers the copy.
	if err := r.vm.Write(s, 0x800004, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !r.vm.Resident(s, 0x800000) {
		t.Fatal("written page should now be in DRAM")
	}
	if r.vm.Stats().CowFaults != 1 {
		t.Fatalf("cow faults %d", r.vm.Stats().CowFaults)
	}
	// Merged contents: original bytes around the write.
	got := make([]byte, 8)
	if err := r.vm.Read(s, 0x800000, got); err != nil {
		t.Fatal(err)
	}
	want := []byte{0xCD, 0xCD, 0xCD, 0xCD, 1, 2, 3, 0xCD}
	if !bytes.Equal(got, want) {
		t.Fatalf("cow merge %x, want %x", got, want)
	}
	// The flash original is untouched.
	fbuf := make([]byte, 8)
	if _, err := r.flash.Read(64*1024, fbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fbuf, orig[:8]) {
		t.Fatal("cow modified the flash original")
	}
}

func TestSharedFlashMappingAcrossSpaces(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	stageFlash(t, r.flash, 0, bytes.Repeat([]byte{7}, 4096))
	a, b := r.vm.NewSpace(), r.vm.NewSpace()
	for _, s := range []*Space{a, b} {
		if err := r.vm.MapFlash(s, 0x1000, 0, 4096, PermRead|PermWrite); err != nil {
			t.Fatal(err)
		}
	}
	// Space a writes; space b must keep seeing the original (private COW).
	if err := r.vm.Write(a, 0x1000, []byte{99}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	if err := r.vm.Read(b, 0x1000, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatalf("space b sees %d, want the unmodified 7", got[0])
	}
}

func TestUnmapReleasesFrames(t *testing.T) {
	r := newRig(t, 8*4096, nil)
	s := r.vm.NewSpace()
	if err := r.vm.MapAnonymous(s, 0, 4*4096, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Write(s, 0, make([]byte, 4*4096)); err != nil {
		t.Fatal(err)
	}
	used := r.vm.Stats().FramesInUse
	if used != 4 {
		t.Fatalf("frames in use %d", used)
	}
	if err := r.vm.Unmap(s, 0, 4*4096); err != nil {
		t.Fatal(err)
	}
	if r.vm.Stats().FramesInUse != 0 {
		t.Fatal("unmap leaked frames")
	}
	if err := r.vm.Read(s, 0, make([]byte, 1)); !errors.Is(err, ErrUnmapped) {
		t.Fatal("unmapped page still accessible")
	}
}

func TestOutOfMemoryWithoutSwap(t *testing.T) {
	r := newRig(t, 2*4096, nil)
	s := r.vm.NewSpace()
	if err := r.vm.MapAnonymous(s, 0, 4*4096, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	err := r.vm.Write(s, 0, make([]byte, 4*4096))
	if !errors.Is(err, ErrNoMemory) {
		t.Fatalf("overcommit without swap: %v", err)
	}
}

func TestSwapPagingRoundTrip(t *testing.T) {
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	dr, err := dram.New(dram.Config{CapacityBytes: 1 << 20, Params: device.NECDram}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := flash.New(flash.Config{Banks: 1, BlocksPerBank: 16, BlockBytes: 64 * 1024, Params: device.IntelFlash}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	dk, err := disk.New(disk.Config{CapacityBytes: 4 << 20, Params: device.KittyHawk}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewDeviceSwapper(dk, 0, 2<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Only 2 frames: touching 4 pages forces paging.
	v, err := New(Config{PageBytes: 4096, DRAMBase: 0, DRAMBytes: 2 * 4096, Swap: sw}, clock, dr, fd)
	if err != nil {
		t.Fatal(err)
	}
	s := v.NewSpace()
	if err := v.MapAnonymous(s, 0, 4*4096, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if err := v.Write(s, uint64(p*4096), []byte{byte(p + 1)}); err != nil {
			t.Fatalf("write page %d: %v", p, err)
		}
	}
	st := v.Stats()
	if st.PageOuts == 0 {
		t.Fatal("no page-outs under pressure")
	}
	// All pages still readable with correct contents (page-ins).
	for p := 0; p < 4; p++ {
		buf := make([]byte, 1)
		if err := v.Read(s, uint64(p*4096), buf); err != nil {
			t.Fatalf("read page %d: %v", p, err)
		}
		if buf[0] != byte(p+1) {
			t.Fatalf("page %d corrupted through swap: %d", p, buf[0])
		}
	}
	if v.Stats().PageIns == 0 {
		t.Fatal("no page-ins recorded")
	}
}

func TestSwapperValidation(t *testing.T) {
	r := newRig(t, 4096, nil)
	if _, err := NewDeviceSwapper(r.dram, 0, 100, 4096); err == nil {
		t.Error("too-small swap region accepted")
	}
	sw, err := NewDeviceSwapper(r.dram, 0, 8192, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.PageIn(0, make([]byte, 4096)); err == nil {
		t.Error("page-in of unallocated slot accepted")
	}
	if _, err := sw.PageOut(make([]byte, 8192)); err == nil {
		t.Error("oversized page-out accepted")
	}
}

func TestSwapFull(t *testing.T) {
	r := newRig(t, 4096, nil)
	sw, err := NewDeviceSwapper(r.dram, 0, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.PageOut(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.PageOut(make([]byte, 4096)); !errors.Is(err, ErrSwapFull) {
		t.Fatalf("swap overcommit: %v", err)
	}
}

func TestXIPIsFasterThanLoadThenRun(t *testing.T) {
	// The E5 claim in miniature: mapping flash code and executing one pass
	// beats copying it to DRAM first and then executing, because the copy
	// dominates.
	r := newRig(t, 256*4096, nil)
	const codeSize = 16 * 4096
	code := bytes.Repeat([]byte{0xEA}, codeSize)
	stageFlash(t, r.flash, 0, code)

	// XIP path.
	s1 := r.vm.NewSpace()
	if err := r.vm.MapFlash(s1, 0x400000, 0, codeSize, PermRead|PermExec); err != nil {
		t.Fatal(err)
	}
	start := r.clock.Now()
	if err := r.vm.Exec(s1, 0x400000, codeSize); err != nil {
		t.Fatal(err)
	}
	xip := r.clock.Now().Sub(start)

	// Load-then-run path: read from flash, write into anonymous DRAM, run.
	s2 := r.vm.NewSpace()
	if err := r.vm.MapAnonymous(s2, 0x400000, codeSize, PermRead|PermWrite|PermExec); err != nil {
		t.Fatal(err)
	}
	start = r.clock.Now()
	buf := make([]byte, codeSize)
	if _, err := r.flash.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Write(s2, 0x400000, buf); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Exec(s2, 0x400000, codeSize); err != nil {
		t.Fatal(err)
	}
	load := r.clock.Now().Sub(start)

	if xip >= load {
		t.Errorf("XIP %v not faster than load-then-run %v", xip, load)
	}
}

// testPager serves pages from an in-memory table and counts reads.
type testPager struct {
	pages map[int64][]byte
	reads int
}

func (p *testPager) ReadPage(idx int64, buf []byte) error {
	p.reads++
	for i := range buf {
		buf[i] = 0
	}
	copy(buf, p.pages[idx])
	return nil
}

func TestMapExternalReadInPlace(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	pager := &testPager{pages: map[int64][]byte{
		0: bytes.Repeat([]byte{0xA1}, 4096),
		1: bytes.Repeat([]byte{0xA2}, 4096),
	}}
	s := r.vm.NewSpace()
	if err := r.vm.MapExternal(s, 0x2000, pager, 0, 2*4096, PermRead); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	// A read spanning the two pages.
	if err := r.vm.Read(s, 0x2000+4092, buf); err != nil {
		t.Fatal(err)
	}
	want := []byte{0xA1, 0xA1, 0xA1, 0xA1, 0xA2, 0xA2, 0xA2, 0xA2}
	if !bytes.Equal(buf, want) {
		t.Fatalf("got %x want %x", buf, want)
	}
	if pager.reads != 2 {
		t.Fatalf("pager reads %d, want 2", pager.reads)
	}
	if r.vm.Stats().FramesInUse != 0 {
		t.Fatal("external read consumed frames")
	}
}

func TestMapExternalCopyOnWrite(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	pager := &testPager{pages: map[int64][]byte{5: bytes.Repeat([]byte{0x77}, 4096)}}
	s := r.vm.NewSpace()
	if err := r.vm.MapExternal(s, 0x4000, pager, 5, 4096, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Write(s, 0x4002, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if !r.vm.Resident(s, 0x4000) {
		t.Fatal("write should copy the page to DRAM")
	}
	got := make([]byte, 4)
	if err := r.vm.Read(s, 0x4000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0x77, 0x77, 9, 0x77}) {
		t.Fatalf("cow merge %x", got)
	}
	// Private mapping: the pager's copy is untouched.
	if pager.pages[5][2] != 0x77 {
		t.Fatal("write leaked through the private mapping")
	}
}

func TestMapExternalValidation(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	s := r.vm.NewSpace()
	pager := &testPager{pages: map[int64][]byte{}}
	if err := r.vm.MapExternal(s, 1, pager, 0, 4096, PermRead); !errors.Is(err, ErrBadRange) {
		t.Error("unaligned external mapping accepted")
	}
	if err := r.vm.MapExternal(s, 0, nil, 0, 4096, PermRead); !errors.Is(err, ErrBadRange) {
		t.Error("nil pager accepted")
	}
}

// writablePager extends testPager with write-back.
type writablePager struct {
	testPager
	writes int
}

func (p *writablePager) WritePage(idx int64, data []byte) error {
	p.writes++
	p.pages[idx] = append([]byte(nil), data...)
	return nil
}

func TestSharedMappingMsync(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	pager := &writablePager{testPager: testPager{pages: map[int64][]byte{
		0: bytes.Repeat([]byte{1}, 4096),
		1: bytes.Repeat([]byte{2}, 4096),
	}}}
	s := r.vm.NewSpace()
	if err := r.vm.MapExternalShared(s, 0x8000, pager, 0, 2*4096, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Write(s, 0x8000, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	if pager.writes != 0 {
		t.Fatal("write flushed before msync")
	}
	if err := r.vm.Msync(s, 0x8000, 2*4096); err != nil {
		t.Fatal(err)
	}
	if pager.writes != 1 {
		t.Fatalf("msync wrote %d pages, want only the dirty one", pager.writes)
	}
	if pager.pages[0][0] != 0xAA || pager.pages[0][1] != 1 {
		t.Fatal("written-back page wrong")
	}
	// Clean after msync: another msync writes nothing.
	if err := r.vm.Msync(s, 0x8000, 2*4096); err != nil {
		t.Fatal(err)
	}
	if pager.writes != 1 {
		t.Fatal("msync rewrote clean pages")
	}
}

func TestSharedMappingUnmapFlushes(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	pager := &writablePager{testPager: testPager{pages: map[int64][]byte{0: bytes.Repeat([]byte{5}, 4096)}}}
	s := r.vm.NewSpace()
	if err := r.vm.MapExternalShared(s, 0, pager, 0, 4096, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Write(s, 10, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Unmap(s, 0, 4096); err != nil {
		t.Fatal(err)
	}
	if pager.pages[0][10] != 9 {
		t.Fatal("unmap did not flush dirty shared page")
	}
	if r.vm.Stats().FramesInUse != 0 {
		t.Fatal("unmap leaked frame")
	}
}

func TestSharedWritableNeedsWriter(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	s := r.vm.NewSpace()
	readOnly := &testPager{pages: map[int64][]byte{}}
	if err := r.vm.MapExternalShared(s, 0, readOnly, 0, 4096, PermRead|PermWrite); err == nil {
		t.Fatal("writable shared mapping accepted without an ExternalWriter")
	}
	// Read-only shared is fine without a writer.
	if err := r.vm.MapExternalShared(s, 0, readOnly, 0, 4096, PermRead); err != nil {
		t.Fatal(err)
	}
}

func TestProtect(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	s := r.vm.NewSpace()
	if err := r.vm.MapAnonymous(s, 0, 2*4096, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Write(s, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Protect(s, 0, 2*4096, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Write(s, 0, []byte{2}); !errors.Is(err, ErrProtection) {
		t.Fatalf("write after mprotect: %v", err)
	}
	if err := r.vm.Read(s, 0, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Protect(s, 0x100000, 4096, PermRead); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("protect of unmapped: %v", err)
	}
	// Re-enabling write works again.
	if err := r.vm.Protect(s, 0, 2*4096, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Write(s, 0, []byte{3}); err != nil {
		t.Fatal(err)
	}
}

func TestProtectMakesFlashMappingCow(t *testing.T) {
	r := newRig(t, 64*4096, nil)
	stageFlash(t, r.flash, 0, bytes.Repeat([]byte{4}, 4096))
	s := r.vm.NewSpace()
	if err := r.vm.MapFlash(s, 0, 0, 4096, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Protect(s, 0, 4096, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := r.vm.Write(s, 0, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if !r.vm.Resident(s, 0) {
		t.Fatal("write after protect did not copy-on-write")
	}
	if r.flash.Peek(0) != 4 {
		t.Fatal("flash original modified")
	}
}

// Property: after any sequence of writes to an anonymous region, reads
// return the last value written per byte, regardless of frame pressure
// (with swap enabled).
func TestVMModelProperty(t *testing.T) {
	f := func(writes []struct {
		Page uint8
		Off  uint8
		Val  byte
	}) bool {
		clock := sim.NewClock()
		meter := sim.NewEnergyMeter()
		dr, err := dram.New(dram.Config{CapacityBytes: 1 << 20, Params: device.NECDram}, clock, meter)
		if err != nil {
			return false
		}
		fd, err := flash.New(flash.Config{Banks: 1, BlocksPerBank: 4, BlockBytes: 64 * 1024, Params: device.IntelFlash}, clock, meter)
		if err != nil {
			return false
		}
		sw, err := NewDeviceSwapper(dr, 512*1024, 256*1024, 4096)
		if err != nil {
			return false
		}
		v, err := New(Config{PageBytes: 4096, DRAMBase: 0, DRAMBytes: 4 * 4096, Swap: sw}, clock, dr, fd)
		if err != nil {
			return false
		}
		s := v.NewSpace()
		if err := v.MapAnonymous(s, 0, 16*4096, PermRead|PermWrite); err != nil {
			return false
		}
		model := map[uint64]byte{}
		for _, w := range writes {
			addr := uint64(w.Page%16)*4096 + uint64(w.Off)
			if err := v.Write(s, addr, []byte{w.Val}); err != nil {
				return false
			}
			model[addr] = w.Val
		}
		buf := make([]byte, 1)
		for addr, want := range model {
			if err := v.Read(s, addr, buf); err != nil {
				return false
			}
			if buf[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
