// Package vm implements the virtual-memory system of the paper's §3.2 for
// a single-level 64-bit address space spanning DRAM and direct-mapped
// flash.
//
// In the paper's storage organisation, virtual memory exists "primarily to
// provide protection across multiple address spaces, rather than to expand
// capacity": every address space gets its own page table, and the
// interesting mappings are:
//
//   - anonymous DRAM pages (data and stack segments), demand-zeroed;
//   - execute-in-place (XIP) mappings of flash regions: "programs residing
//     in flash memory can be executed in place without loss of
//     performance. There is no need to load their code segment into
//     primary storage" — a flash mapping is read and executed directly
//     from the device, no copy ever made;
//   - copy-on-write flash mappings: writable views of flash-resident data
//     where "the affected block [is] copied to DRAM" only when a write
//     actually occurs, postponing all erase/write complications.
//
// For the conventional-organisation baseline, the package also supports a
// swap pager, so the same page tables can model a DRAM-scarce machine that
// pages to disk.
package vm

import (
	"errors"
	"fmt"

	"ssmobile/internal/dram"
	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

// Sentinel errors.
var (
	// ErrUnmapped reports an access to an unmapped virtual page.
	ErrUnmapped = errors.New("vm: address not mapped")
	// ErrProtection reports an access violating the page's permissions.
	ErrProtection = errors.New("vm: protection violation")
	// ErrNoMemory reports DRAM frame exhaustion with no swap configured.
	ErrNoMemory = errors.New("vm: out of physical memory")
	// ErrOverlap reports a mapping colliding with an existing one.
	ErrOverlap = errors.New("vm: mapping overlaps existing mapping")
	// ErrBadRange reports a zero- or negative-length mapping.
	ErrBadRange = errors.New("vm: bad range")
)

// Perm is a page-permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// String renders the permissions rwx-style.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// ExternalPager supplies page contents for mappings backed by a storage
// object the VM does not manage itself — in this system, a file whose
// blocks live behind the physical storage manager. Reads through the
// pager are charged by whichever device the block lives on, so a
// flash-resident file page is read in place with no DRAM copy, exactly
// the paper's memory-mapped file story.
type ExternalPager interface {
	// ReadPage fills buf (one page) with the contents of page idx.
	ReadPage(idx int64, buf []byte) error
}

// ExternalWriter is the write-back half a pager must implement for shared
// mappings: Msync and Unmap push dirty pages through it.
type ExternalWriter interface {
	// WritePage stores one page's contents back to the object.
	WritePage(idx int64, data []byte) error
}

// Swapper provides backing slots for paged-out anonymous frames (the
// conventional baseline). Slot numbering is the swapper's own.
type Swapper interface {
	// PageOut stores a frame's contents and returns its slot.
	PageOut(data []byte) (slot int64, err error)
	// PageIn retrieves a slot's contents into buf and releases the slot.
	PageIn(slot int64, buf []byte) error
}

// Config parameterises the VM system.
type Config struct {
	// PageBytes is the virtual page size.
	PageBytes int
	// DRAMBase and DRAMBytes delimit the frame pool inside the DRAM
	// device.
	DRAMBase  int64
	DRAMBytes int64
	// Swap, if non-nil, enables paging anonymous frames out under
	// pressure; nil means frame exhaustion is an error (the solid-state
	// configuration, where capacity is ample by design).
	Swap Swapper
	// Obs receives the VM's metrics and op spans; nil falls back to
	// obs.Default().
	Obs *obs.Observer
}

// Stats aggregates the VM counters.
type Stats struct {
	MinorFaults  int64 // demand-zero fills
	CowFaults    int64 // flash→DRAM copy-on-write
	PageIns      int64
	PageOuts     int64
	FlashReads   int64 // page-granule reads served in place from flash
	DRAMAccesses int64
	FramesInUse  int
	FramesTotal  int
}

type medium uint8

const (
	medNone medium = iota
	medDRAM
	medFlash
	medSwapped
	medExternal
)

type pte struct {
	perm     Perm
	med      medium
	frame    int   // DRAM frame index when med == medDRAM
	flashOff int64 // flash byte address when med == medFlash (also kept for CoW source)
	swapSlot int64 // when med == medSwapped
	pager    ExternalPager
	pagerIdx int64 // page index within the pager's object
	cow      bool  // write triggers copy to DRAM
	anon     bool  // demand-zero anonymous page
	shared   bool  // external mapping whose writes flush back via Msync
	dirty    bool  // shared page modified since last write-back
}

// Space is one address space (one protection domain).
type Space struct {
	id    int
	pages map[uint64]*pte
}

// ID reports the space's identifier.
func (s *Space) ID() int { return s.id }

// frameOwner tracks which (space, vpn) holds each frame, for eviction.
type frameOwner struct {
	space *Space
	vpn   uint64
}

// VM is the virtual-memory system. Not safe for concurrent use.
type VM struct {
	cfg   Config
	clock *sim.Clock
	dram  *dram.Device
	flash *flash.Device

	freeFrames []int
	owners     map[int]frameOwner
	fifo       []int // eviction order of allocated anonymous frames
	nextSpace  int

	obs                           *obs.Observer
	minor, cow, pageIns, pageOuts *obs.Counter
	flashReads, dramAccesses      *obs.Counter
}

// New builds a VM over a DRAM frame pool and a flash device for XIP and
// copy-on-write mappings.
func New(cfg Config, clock *sim.Clock, dramDev *dram.Device, flashDev *flash.Device) (*VM, error) {
	if cfg.PageBytes <= 0 {
		return nil, fmt.Errorf("vm: non-positive page size")
	}
	if cfg.DRAMBase < 0 || cfg.DRAMBytes < 0 || cfg.DRAMBase+cfg.DRAMBytes > dramDev.Capacity() {
		return nil, fmt.Errorf("vm: frame pool [%d,%d) outside DRAM of %d",
			cfg.DRAMBase, cfg.DRAMBase+cfg.DRAMBytes, dramDev.Capacity())
	}
	o := obs.Or(cfg.Obs)
	lbl := obs.Labels{"layer": "vm"}
	v := &VM{
		cfg:          cfg,
		clock:        clock,
		dram:         dramDev,
		flash:        flashDev,
		owners:       make(map[int]frameOwner),
		obs:          o,
		minor:        o.Counter("faults_total", obs.Labels{"layer": "vm", "kind": "minor"}),
		cow:          o.Counter("faults_total", obs.Labels{"layer": "vm", "kind": "cow"}),
		pageIns:      o.Counter("page_ins_total", lbl),
		pageOuts:     o.Counter("page_outs_total", lbl),
		flashReads:   o.Counter("accesses_total", obs.Labels{"layer": "vm", "medium": "flash"}),
		dramAccesses: o.Counter("accesses_total", obs.Labels{"layer": "vm", "medium": "dram"}),
	}
	frames := int(cfg.DRAMBytes / int64(cfg.PageBytes))
	for f := frames - 1; f >= 0; f-- {
		v.freeFrames = append(v.freeFrames, f)
	}
	o.GaugeFunc("frames_in_use", lbl, func() float64 { return float64(frames - len(v.freeFrames)) })
	return v, nil
}

// span opens an op span against the VM's clock and the DRAM device's
// energy meter.
func (v *VM) span(op string) obs.SpanRef {
	return v.obs.Span(v.clock, v.dram.Meter(), "vm", op)
}

// PageBytes reports the page size.
func (v *VM) PageBytes() int { return v.cfg.PageBytes }

// FramesFree reports the free DRAM frames.
func (v *VM) FramesFree() int { return len(v.freeFrames) }

// NewSpace creates an empty address space.
func (v *VM) NewSpace() *Space {
	v.nextSpace++
	return &Space{id: v.nextSpace, pages: make(map[uint64]*pte)}
}

func (v *VM) vpn(addr uint64) uint64 { return addr / uint64(v.cfg.PageBytes) }

func (v *VM) frameAddr(frame int) int64 {
	return v.cfg.DRAMBase + int64(frame)*int64(v.cfg.PageBytes)
}

func (v *VM) checkRange(length int) error {
	if length <= 0 {
		return ErrBadRange
	}
	return nil
}

func (v *VM) checkOverlap(s *Space, addr uint64, length int) error {
	first := v.vpn(addr)
	last := v.vpn(addr + uint64(length) - 1)
	for p := first; p <= last; p++ {
		if _, ok := s.pages[p]; ok {
			return fmt.Errorf("%w: vpn %d", ErrOverlap, p)
		}
	}
	return nil
}

// MapAnonymous maps length bytes of demand-zero DRAM at addr.
func (v *VM) MapAnonymous(s *Space, addr uint64, length int, perm Perm) error {
	if err := v.checkRange(length); err != nil {
		return err
	}
	if err := v.checkOverlap(s, addr, length); err != nil {
		return err
	}
	first := v.vpn(addr)
	last := v.vpn(addr + uint64(length) - 1)
	for p := first; p <= last; p++ {
		s.pages[p] = &pte{perm: perm, med: medNone, anon: true, frame: -1, swapSlot: -1}
	}
	return nil
}

// MapFlash maps length bytes of the flash device, starting at flashOff,
// at addr. If the permissions include write, the mapping is copy-on-write:
// reads and execution come straight from flash, and only a write copies
// the affected page to DRAM (paper §3.1). addr, flashOff and length must
// be page-aligned for simplicity of the model.
func (v *VM) MapFlash(s *Space, addr uint64, flashOff int64, length int, perm Perm) error {
	if err := v.checkRange(length); err != nil {
		return err
	}
	pb := int64(v.cfg.PageBytes)
	if addr%uint64(pb) != 0 || flashOff%pb != 0 || int64(length)%pb != 0 {
		return fmt.Errorf("%w: flash mappings must be page-aligned", ErrBadRange)
	}
	if flashOff < 0 || flashOff+int64(length) > v.flash.Capacity() {
		return fmt.Errorf("%w: flash range [%d,%d)", ErrBadRange, flashOff, flashOff+int64(length))
	}
	if err := v.checkOverlap(s, addr, length); err != nil {
		return err
	}
	first := v.vpn(addr)
	n := length / v.cfg.PageBytes
	for i := 0; i < n; i++ {
		s.pages[first+uint64(i)] = &pte{
			perm:     perm,
			med:      medFlash,
			frame:    -1,
			flashOff: flashOff + int64(i)*pb,
			swapSlot: -1,
			cow:      perm&PermWrite != 0,
		}
	}
	return nil
}

// MapExternal maps length bytes (page-aligned) of pages served by an
// external pager starting at its page firstIdx. Reads and execution go
// through the pager in place; if the permissions include write the
// mapping is private copy-on-write: the first write copies the page into
// a DRAM frame and later writes stay there (writes do not propagate back
// through the pager).
func (v *VM) MapExternal(s *Space, addr uint64, pager ExternalPager, firstIdx int64, length int, perm Perm) error {
	if err := v.checkRange(length); err != nil {
		return err
	}
	if pager == nil {
		return fmt.Errorf("%w: nil pager", ErrBadRange)
	}
	pb := uint64(v.cfg.PageBytes)
	if addr%pb != 0 || length%v.cfg.PageBytes != 0 {
		return fmt.Errorf("%w: external mappings must be page-aligned", ErrBadRange)
	}
	if err := v.checkOverlap(s, addr, length); err != nil {
		return err
	}
	first := v.vpn(addr)
	n := length / v.cfg.PageBytes
	for i := 0; i < n; i++ {
		s.pages[first+uint64(i)] = &pte{
			perm:     perm,
			med:      medExternal,
			frame:    -1,
			swapSlot: -1,
			pager:    pager,
			pagerIdx: firstIdx + int64(i),
			cow:      perm&PermWrite != 0,
		}
	}
	return nil
}

// MapExternalShared maps pager pages like MapExternal, but as a shared
// mapping: writes land in DRAM frames and are pushed back to the object
// by Msync (and by Unmap). The pager must also implement ExternalWriter.
func (v *VM) MapExternalShared(s *Space, addr uint64, pager ExternalPager, firstIdx int64, length int, perm Perm) error {
	if _, ok := pager.(ExternalWriter); !ok && perm&PermWrite != 0 {
		return fmt.Errorf("%w: shared writable mapping needs an ExternalWriter", ErrBadRange)
	}
	if err := v.MapExternal(s, addr, pager, firstIdx, length, perm); err != nil {
		return err
	}
	first := v.vpn(addr)
	for i := 0; i < length/v.cfg.PageBytes; i++ {
		s.pages[first+uint64(i)].shared = true
	}
	return nil
}

// Msync writes the dirty pages of shared mappings in [addr, addr+length)
// back through their pagers. The frames stay resident and clean.
func (v *VM) Msync(s *Space, addr uint64, length int) error {
	if err := v.checkRange(length); err != nil {
		return err
	}
	first := v.vpn(addr)
	last := v.vpn(addr + uint64(length) - 1)
	buf := make([]byte, v.cfg.PageBytes)
	for p := first; p <= last; p++ {
		e, ok := s.pages[p]
		if !ok || !e.shared || !e.dirty || e.med != medDRAM {
			continue
		}
		if _, err := v.dram.Read(v.frameAddr(e.frame), buf); err != nil {
			return err
		}
		if err := e.pager.(ExternalWriter).WritePage(e.pagerIdx, buf); err != nil {
			return err
		}
		e.dirty = false
	}
	return nil
}

// Unmap removes the pages covering [addr, addr+length), releasing any DRAM
// frames they held. Dirty pages of shared mappings are written back first.
func (v *VM) Unmap(s *Space, addr uint64, length int) error {
	if err := v.checkRange(length); err != nil {
		return err
	}
	if err := v.Msync(s, addr, length); err != nil {
		return err
	}
	first := v.vpn(addr)
	last := v.vpn(addr + uint64(length) - 1)
	for p := first; p <= last; p++ {
		e, ok := s.pages[p]
		if !ok {
			continue
		}
		if e.med == medDRAM {
			v.releaseFrame(e.frame)
		}
		delete(s.pages, p)
	}
	return nil
}

// Protect changes the permissions of the mapped pages covering
// [addr, addr+length). Adding write to an in-place external or flash
// mapping makes it copy-on-write (private) unless it was mapped shared.
func (v *VM) Protect(s *Space, addr uint64, length int, perm Perm) error {
	if err := v.checkRange(length); err != nil {
		return err
	}
	first := v.vpn(addr)
	last := v.vpn(addr + uint64(length) - 1)
	// Validate first so the change is all-or-nothing.
	for p := first; p <= last; p++ {
		if _, ok := s.pages[p]; !ok {
			return fmt.Errorf("%w: vpn %d", ErrUnmapped, p)
		}
	}
	for p := first; p <= last; p++ {
		e := s.pages[p]
		e.perm = perm
		if perm&PermWrite != 0 && (e.med == medFlash || e.med == medExternal) && !e.shared {
			e.cow = true
		}
	}
	return nil
}

func (v *VM) releaseFrame(frame int) {
	delete(v.owners, frame)
	for i, f := range v.fifo {
		if f == frame {
			v.fifo = append(v.fifo[:i], v.fifo[i+1:]...)
			break
		}
	}
	v.freeFrames = append(v.freeFrames, frame)
}

// allocFrame returns a free DRAM frame, paging one out if a swapper is
// configured.
func (v *VM) allocFrame(owner frameOwner) (int, error) {
	if n := len(v.freeFrames); n > 0 {
		f := v.freeFrames[n-1]
		v.freeFrames = v.freeFrames[:n-1]
		v.owners[f] = owner
		v.fifo = append(v.fifo, f)
		return f, nil
	}
	if v.cfg.Swap == nil {
		return 0, ErrNoMemory
	}
	if len(v.fifo) == 0 {
		return 0, ErrNoMemory
	}
	victim := v.fifo[0]
	v.fifo = v.fifo[1:]
	vo := v.owners[victim]
	e := vo.space.pages[vo.vpn]
	sp := v.span("page_out")
	buf := make([]byte, v.cfg.PageBytes)
	if _, err := v.dram.Read(v.frameAddr(victim), buf); err != nil {
		sp.End(0, err)
		return 0, err
	}
	slot, err := v.cfg.Swap.PageOut(buf)
	if err != nil {
		sp.End(0, err)
		return 0, err
	}
	sp.End(int64(len(buf)), nil)
	v.pageOuts.Inc()
	e.med = medSwapped
	e.swapSlot = slot
	e.frame = -1
	delete(v.owners, victim)
	v.owners[victim] = owner
	v.fifo = append(v.fifo, victim)
	return victim, nil
}

// settle brings the page to a state where the access can proceed,
// handling demand-zero, swap-in and copy-on-write faults.
func (v *VM) settle(s *Space, vpn uint64, e *pte, write bool) error {
	switch e.med {
	case medNone:
		// Demand-zero anonymous page.
		frame, err := v.allocFrame(frameOwner{space: s, vpn: vpn})
		if err != nil {
			return err
		}
		zero := make([]byte, v.cfg.PageBytes)
		if _, err := v.dram.Write(v.frameAddr(frame), zero); err != nil {
			return err
		}
		e.med = medDRAM
		e.frame = frame
		v.minor.Inc()
		return nil

	case medSwapped:
		frame, err := v.allocFrame(frameOwner{space: s, vpn: vpn})
		if err != nil {
			return err
		}
		sp := v.span("page_in")
		buf := make([]byte, v.cfg.PageBytes)
		if err := v.cfg.Swap.PageIn(e.swapSlot, buf); err != nil {
			sp.End(0, err)
			return err
		}
		if _, err := v.dram.Write(v.frameAddr(frame), buf); err != nil {
			sp.End(0, err)
			return err
		}
		sp.End(int64(len(buf)), nil)
		e.med = medDRAM
		e.frame = frame
		e.swapSlot = -1
		v.pageIns.Inc()
		return nil

	case medFlash, medExternal:
		if !write {
			return nil // read/execute in place
		}
		// Copy-on-write: copy the backing page into a fresh DRAM frame.
		frame, err := v.allocFrame(frameOwner{space: s, vpn: vpn})
		if err != nil {
			return err
		}
		buf := make([]byte, v.cfg.PageBytes)
		if e.med == medFlash {
			if _, err := v.flash.Read(e.flashOff, buf); err != nil {
				return err
			}
		} else if err := e.pager.ReadPage(e.pagerIdx, buf); err != nil {
			return err
		}
		if _, err := v.dram.Write(v.frameAddr(frame), buf); err != nil {
			return err
		}
		e.med = medDRAM
		e.frame = frame
		v.cow.Inc()
		return nil

	default: // medDRAM
		return nil
	}
}

// access is the common read/write/execute path.
func (v *VM) access(s *Space, addr uint64, buf []byte, need Perm, write bool) error {
	if len(buf) == 0 {
		return nil
	}
	pb := uint64(v.cfg.PageBytes)
	off := 0
	for off < len(buf) {
		vpn := v.vpn(addr)
		e, ok := s.pages[vpn]
		if !ok {
			return fmt.Errorf("%w: addr %#x in space %d", ErrUnmapped, addr, s.id)
		}
		if e.perm&need != need {
			return fmt.Errorf("%w: addr %#x needs %v has %v", ErrProtection, addr, need, e.perm)
		}
		if err := v.settle(s, vpn, e, write); err != nil {
			return err
		}
		pageOff := addr % pb
		n := int(pb - pageOff)
		if n > len(buf)-off {
			n = len(buf) - off
		}
		switch e.med {
		case medDRAM:
			v.dramAccesses.Inc()
			da := v.frameAddr(e.frame) + int64(pageOff)
			var err error
			if write {
				_, err = v.dram.Write(da, buf[off:off+n])
				if e.shared {
					e.dirty = true
				}
			} else {
				_, err = v.dram.Read(da, buf[off:off+n])
			}
			if err != nil {
				return err
			}
		case medFlash:
			v.flashReads.Inc()
			if _, err := v.flash.Read(e.flashOff+int64(pageOff), buf[off:off+n]); err != nil {
				return err
			}
		case medExternal:
			v.flashReads.Inc()
			page := make([]byte, v.cfg.PageBytes)
			if err := e.pager.ReadPage(e.pagerIdx, page); err != nil {
				return err
			}
			copy(buf[off:off+n], page[pageOff:])
		default:
			return fmt.Errorf("vm: page in unexpected state %d", e.med)
		}
		addr += uint64(n)
		off += n
	}
	return nil
}

// Read copies memory at addr into buf, charging device latencies.
func (v *VM) Read(s *Space, addr uint64, buf []byte) error {
	return v.access(s, addr, buf, PermRead, false)
}

// Write stores buf at addr.
func (v *VM) Write(s *Space, addr uint64, data []byte) error {
	return v.access(s, addr, data, PermWrite, true)
}

// Exec models instruction fetch of length bytes starting at addr: reads
// requiring execute permission, served in place when the code lives in
// flash.
func (v *VM) Exec(s *Space, addr uint64, length int) error {
	if err := v.checkRange(length); err != nil {
		return err
	}
	buf := make([]byte, length)
	return v.access(s, addr, buf, PermExec, false)
}

// Resident reports whether the page containing addr currently occupies a
// DRAM frame.
func (v *VM) Resident(s *Space, addr uint64) bool {
	e, ok := s.pages[v.vpn(addr)]
	return ok && e.med == medDRAM
}

// InFlash reports whether the page containing addr is served from flash.
func (v *VM) InFlash(s *Space, addr uint64) bool {
	e, ok := s.pages[v.vpn(addr)]
	return ok && e.med == medFlash
}

// Stats summarises the VM counters.
func (v *VM) Stats() Stats {
	total := int(v.cfg.DRAMBytes / int64(v.cfg.PageBytes))
	return Stats{
		MinorFaults:  v.minor.Value(),
		CowFaults:    v.cow.Value(),
		PageIns:      v.pageIns.Value(),
		PageOuts:     v.pageOuts.Value(),
		FlashReads:   v.flashReads.Value(),
		DRAMAccesses: v.dramAccesses.Value(),
		FramesInUse:  total - len(v.freeFrames),
		FramesTotal:  total,
	}
}
