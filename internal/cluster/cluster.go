// Package cluster is the router/placement tier over N in-process
// ssmserve nodes — the scale-out layer the E12 saturation study calls
// for: one simulated card saturates at ~32 open-loop clients, so serving
// beyond that means sharding tenants' keys across many cards, each
// behind its own internal/server instance with its own cleaner, write
// buffer and admission controller.
//
// Three mechanisms make the tier a cluster rather than a load balancer:
//
//   - placement: a consistent-hash ring (virtual points per node) with a
//     directory of per-key overrides — see placement.go;
//   - replication: every write lands on the key's primary plus K
//     replicas with sync-commit semantics matching the single node's
//     group commit (a replicated write's latency is the slowest
//     holder's, and sync fans out to every node so a tenant's data is
//     stable everywhere it lives);
//   - rebalancing: the router watches each node's SMART-style health
//     report (flash.HealthFromSnapshot over the node's own metrics
//     registry — the same pure function behind /debug/health) and, when
//     a card ages toward its free-block margin, cordons the node and
//     migrates its keys to healthier cards, deleting the moved objects
//     so the aging card's cleaner gets its space back.
//
// Admission-control sheds stay node-local by design: a write shed by one
// node's watermark controller is retried against the same node with
// bounded virtual-time backoff (the idle gap is exactly what its cleaner
// needs), and only surfaces to the caller if the node stays overloaded —
// other nodes never inherit the overload, which E14 measures.
//
// The Cluster implements server.Service, so the TCP front end and the
// deterministic N-way-merge workload driver (server.RunWorkload) run
// against a cluster exactly as they run against one node. Everything is
// virtual-time deterministic: requests are serialised under the cluster
// mutex, placement is a pure function of (tenant, key, node names), and
// migration sweeps iterate in sorted order, so a seeded workload yields
// byte-identical results at any host parallelism.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/server"
	"ssmobile/internal/sim"
)

// ErrUnavailable reports a request whose every holder is down — the
// cluster equivalent of a dead disk. Callers should treat it as
// retriable once nodes return.
var ErrUnavailable = errors.New("cluster: no live holder for key")

// Node is one ssmserve node: a server over its own card stack. The
// caller (core's experiments, cmd/ssmserve) assembles the stack and
// hands the cluster the pieces the router needs.
type Node struct {
	// Name identifies the node on the hash ring; it must be unique and
	// stable (placement is a pure function of the name set).
	Name string
	// Srv is the node's server. Replaced by RestartNode.
	Srv *server.Server
	// Clock is the node's virtual clock (each node owns its stack's
	// single-threaded simulation time).
	Clock *sim.Clock
	// Obs is the node's private observer; its registry carries the wear
	// telemetry the router's health checks read. Required for
	// rebalancing; a nil Obs (or one without a registry) disables health
	// checks for the node.
	Obs *obs.Observer
	// Restart, if set, recovers the node after a kill — remounting the
	// card as after a power failure (synced data survives, unsynced DRAM
	// is lost) and returning a fresh server over the recovered stack.
	Restart func() (*server.Server, error)
}

// Config parameterises the router.
type Config struct {
	// Replicas is the number of extra copies beyond the primary
	// (default 1, capped at nodes-1; 0 on a single-node cluster).
	Replicas int
	// VirtualPoints per node on the hash ring (default 16).
	VirtualPoints int
	// RebalanceMargin is the free-block margin below which a node is
	// cordoned and its keys migrated away (default 0.04); UncordonMargin
	// re-admits it for new placements (default 2×RebalanceMargin —
	// hysteresis, so placement does not flap).
	RebalanceMargin, UncordonMargin float64
	// RebalanceCheckEvery is the number of cluster requests between
	// health sweeps (default 64).
	RebalanceCheckEvery int
	// ShedRetries bounds in-place retries of a write shed by a node's
	// admission control; ShedBackoff is the virtual-time backoff before
	// the first retry, doubling per attempt (defaults 2 and 50ms). The
	// backoff is the point: the idle gap is cleaner time.
	ShedRetries int
	ShedBackoff sim.Duration
}

func (c Config) withDefaults(nodes int) Config {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Replicas > nodes-1 {
		c.Replicas = nodes - 1
	}
	if c.VirtualPoints <= 0 {
		c.VirtualPoints = 16
	}
	if c.RebalanceMargin <= 0 {
		c.RebalanceMargin = 0.04
	}
	if c.UncordonMargin <= c.RebalanceMargin {
		c.UncordonMargin = 2 * c.RebalanceMargin
	}
	if c.RebalanceCheckEvery <= 0 {
		c.RebalanceCheckEvery = 64
	}
	if c.ShedRetries <= 0 {
		c.ShedRetries = 2
	}
	if c.ShedBackoff <= 0 {
		c.ShedBackoff = 50 * sim.Millisecond
	}
	return c
}

// Stats is the router's own accounting — logical requests, not the
// per-node fan-out (node servers keep their own server.Stats).
type Stats struct {
	// Completed counts logical requests served; Shed the writes that
	// stayed overloaded after retries; NotFound and BatchedSyncs as on a
	// single node (a cluster sync is batched only if every node batched).
	Completed, Shed, NotFound, BatchedSyncs int64
	// ShedRetries counts in-place retries after a node-local shed;
	// ReplicaSheds counts replica writes dropped because the replica
	// stayed overloaded (the primary copy is intact — healed by the next
	// full write or migration); SkippedReplicaWrites counts writes
	// skipped because a holder was down.
	ShedRetries, ReplicaSheds, SkippedReplicaWrites int64
	// Rebalances counts cordon events; MigratedKeys the keys moved off
	// cordoned nodes; HealedKeys the keys re-replicated back to the
	// target copy count after a restart; ReadFailovers the reads served
	// by a replica because the primary was down or missing the object.
	Rebalances, MigratedKeys, HealedKeys, ReadFailovers int64
}

// entry is one written key's directory record.
type entry struct {
	holders []int // primary first
	size    int64 // current object length upper bound, for migration reads
}

// Cluster routes requests across nodes. All methods are safe for
// concurrent use; requests serialise on the cluster mutex (each node's
// stack is a single-threaded simulation, and deterministic routing needs
// a total order anyway).
type Cluster struct {
	mu       sync.Mutex
	cfg      Config
	nodes    []*Node
	down     []bool
	cordoned []bool
	gen      []uint64 // bumped on restart; invalidates cached node sessions
	ring     []ringPoint
	dir      map[string]map[uint64]*entry
	sessions map[string]*Session
	opsSince int
	st       Stats
}

// New builds a router over the given nodes.
func New(nodes []*Node, cfg Config) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	names := make([]string, len(nodes))
	for i, n := range nodes {
		if n == nil || n.Srv == nil || n.Clock == nil {
			return nil, fmt.Errorf("cluster: node %d needs Srv and Clock", i)
		}
		if n.Name == "" {
			n.Name = fmt.Sprintf("n%d", i)
		}
		names[i] = n.Name
		for j := 0; j < i; j++ {
			if names[j] == n.Name {
				return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
			}
		}
	}
	cfg = cfg.withDefaults(len(nodes))
	return &Cluster{
		cfg:      cfg,
		nodes:    nodes,
		down:     make([]bool, len(nodes)),
		cordoned: make([]bool, len(nodes)),
		gen:      make([]uint64, len(nodes)),
		ring:     buildRing(names, cfg.VirtualPoints),
		dir:      make(map[string]map[uint64]*entry),
		sessions: make(map[string]*Session),
	}, nil
}

// Nodes reports the node list (for CLIs and tests).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Session routes one tenant's requests. Obtain via OpenSession; safe
// for concurrent use (requests serialise on the cluster mutex).
type Session struct {
	c      *Cluster
	tenant string
	sess   []server.RequestDoer
	sgen   []uint64
}

// OpenSession starts (or resumes) a tenant session — the server.Service
// entry point. Node sessions open lazily, only on nodes the tenant's
// requests actually reach.
func (c *Cluster) OpenSession(tenant string) (server.RequestDoer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.sessions[tenant]; ok {
		return s, nil
	}
	s := &Session{
		c:      c,
		tenant: tenant,
		sess:   make([]server.RequestDoer, len(c.nodes)),
		sgen:   make([]uint64, len(c.nodes)),
	}
	c.sessions[tenant] = s
	return s, nil
}

// nodeSession returns the tenant's session on node i, opening (or
// reopening after a restart) as needed. Caller holds c.mu.
func (s *Session) nodeSession(i int) (server.RequestDoer, error) {
	c := s.c
	if s.sess[i] == nil || s.sgen[i] != c.gen[i] {
		d, err := c.nodes[i].Srv.OpenSession(s.tenant)
		if err != nil {
			return nil, err
		}
		s.sess[i] = d
		s.sgen[i] = c.gen[i]
	}
	return s.sess[i], nil
}

// Do routes one request: sync fans out to every live node, reads go to
// the first live holder (failing over across replicas), and writes land
// on every live holder with node-local shed retry.
func (s *Session) Do(req server.Request) (server.Response, error) {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opsSince++
	if c.opsSince >= c.cfg.RebalanceCheckEvery {
		c.opsSince = 0
		c.checkHealth(req.Arrival)
	}
	switch req.Kind {
	case server.OpSync:
		return s.doSync(req)
	case server.OpGet:
		return s.doGet(req)
	default:
		return s.doWrite(req)
	}
}

// doSync fans the sync to every live node in index order — a tenant's
// keys may live anywhere, and the sync-commit contract is "stable
// everywhere it lives". The cluster sync is batched only if every node
// absorbed it into an earlier group commit; its latency is the slowest
// node's (the commit is acknowledged when the last replica is stable).
func (s *Session) doSync(req server.Request) (server.Response, error) {
	c := s.c
	var resp server.Response
	live := 0
	allBatched := true
	for i := range c.nodes {
		if c.down[i] {
			continue
		}
		sess, err := s.nodeSession(i)
		if err != nil {
			return server.Response{}, err
		}
		r, err := sess.Do(req)
		if err != nil {
			return server.Response{}, err
		}
		live++
		if !r.Batched {
			allBatched = false
		}
		if r.Latency > resp.Latency {
			resp.Latency = r.Latency
		}
	}
	if live == 0 {
		return server.Response{}, ErrUnavailable
	}
	resp.Batched = allBatched
	if allBatched {
		c.st.BatchedSyncs++
	}
	c.st.Completed++
	return resp, nil
}

// doGet reads from the key's first live holder, failing over to the
// next replica when the preferred one is down or (after a lossy
// restart) no longer has the object.
func (s *Session) doGet(req server.Request) (server.Response, error) {
	c := s.c
	holders := c.holdersFor(s.tenant, req.Key)
	var lastErr error
	tried := 0
	for rank, h := range holders {
		if c.down[h] {
			continue
		}
		sess, err := s.nodeSession(h)
		if err != nil {
			return server.Response{}, err
		}
		r, err := sess.Do(req)
		if err == nil {
			if rank > 0 {
				c.st.ReadFailovers++
			}
			c.st.Completed++
			return r, nil
		}
		tried++
		lastErr = err
		if !errors.Is(err, server.ErrNotFound) {
			return server.Response{}, err
		}
	}
	if tried == 0 {
		return server.Response{}, ErrUnavailable
	}
	c.st.NotFound++
	return server.Response{}, lastErr
}

// doWrite applies a put/truncate/delete to every live holder, primary
// first. A primary shed (after bounded retry) sheds the whole request;
// a replica shed is dropped and counted — the shed stays node-local
// instead of cascading through the cluster. The response carries the
// slowest holder's latency: sync-commit semantics, a write is
// acknowledged at the pace of its last replica.
//
// A holder that misses the write — down, or still overloaded after the
// retry budget — leaves the key's holder set: its copy is stale, and a
// stale replica must never serve a later read. RestartNode's heal sweep
// re-replicates under-copied keys once the node is back.
func (s *Session) doWrite(req server.Request) (server.Response, error) {
	c := s.c
	holders := c.holdersFor(s.tenant, req.Key)
	var resp server.Response
	applied := make([]int, 0, len(holders))
	for _, h := range holders {
		if c.down[h] {
			c.st.SkippedReplicaWrites++
			continue
		}
		r, err := s.doWithRetry(h, req)
		switch {
		case err == nil:
			if len(applied) == 0 {
				resp = r
			} else if r.Latency > resp.Latency {
				resp.Latency = r.Latency
			}
			applied = append(applied, h)
		case errors.Is(err, server.ErrOverloaded):
			if len(applied) == 0 {
				// The effective primary stayed overloaded through the
				// retry budget: the write sheds, and no replica was
				// touched — admission control stays node-local.
				c.st.Shed++
				return server.Response{}, err
			}
			c.st.ReplicaSheds++
		case errors.Is(err, server.ErrNotFound):
			if len(applied) == 0 {
				c.st.NotFound++
				return server.Response{}, err
			}
			// A replica missing the object (post-restart, pre-heal)
			// cannot apply a truncate/delete of it; dropping it from the
			// holder set below is exactly right.
		default:
			return server.Response{}, err
		}
	}
	if len(applied) == 0 {
		return server.Response{}, ErrUnavailable
	}
	c.noteWrite(s.tenant, applied, req)
	c.st.Completed++
	return resp, nil
}

// doWithRetry serves req on node h, retrying a shed write with bounded
// exponential virtual-time backoff: each retry arrives later, and the
// idle gap is exactly the time the node's cleaner needs to free blocks
// and its buffer needs to drain. Caller holds c.mu.
func (s *Session) doWithRetry(h int, req server.Request) (server.Response, error) {
	c := s.c
	sess, err := s.nodeSession(h)
	if err != nil {
		return server.Response{}, err
	}
	r, err := sess.Do(req)
	if req.Kind != server.OpPut && req.Kind != server.OpTruncate {
		return r, err
	}
	backoff := c.cfg.ShedBackoff
	for attempt := 0; attempt < c.cfg.ShedRetries && errors.Is(err, server.ErrOverloaded); attempt++ {
		c.st.ShedRetries++
		base := req.Arrival
		if base == 0 || base < c.nodes[h].Clock.Now() {
			base = c.nodes[h].Clock.Now()
		}
		req.Arrival = base.Add(backoff)
		backoff *= 2
		r, err = sess.Do(req)
	}
	return r, err
}

// holdersFor resolves the key's holder set: the directory entry when the
// key has been written, the ring default otherwise. Caller holds c.mu.
func (c *Cluster) holdersFor(tenant string, key uint64) []int {
	if m := c.dir[tenant]; m != nil {
		if e := m[key]; e != nil {
			return e.holders
		}
	}
	return c.ringPlace(tenant, key)
}

// noteWrite records a successful write in the directory: puts and
// truncates pin the holder set to the nodes that actually applied the
// write (a holder that missed it is stale and leaves the set) and track
// the object's length (migration needs to know how much to copy);
// deletes drop the entry. Caller holds c.mu.
func (c *Cluster) noteWrite(tenant string, applied []int, req server.Request) {
	m := c.dir[tenant]
	if req.Kind == server.OpDelete {
		if m != nil {
			delete(m, req.Key)
		}
		return
	}
	if m == nil {
		m = make(map[uint64]*entry)
		c.dir[tenant] = m
	}
	e := m[req.Key]
	if e == nil {
		e = &entry{}
		m[req.Key] = e
	}
	e.holders = append(e.holders[:0], applied...)
	switch req.Kind {
	case server.OpPut:
		if end := req.Offset + int64(len(req.Data)); end > e.size {
			e.size = end
		}
	case server.OpTruncate:
		e.size = req.Size
	}
}

// checkHealth sweeps every live node's SMART report and cordons nodes
// whose free-block margin has sunk below the rebalance threshold,
// migrating their keys to healthier cards. Recovered nodes (margin back
// above the uncordon threshold, e.g. after migration freed their space)
// rejoin placement. Caller holds c.mu.
func (c *Cluster) checkHealth(arrival sim.Time) {
	for i := range c.nodes {
		if c.down[i] {
			continue
		}
		margin, ok := c.nodeMargin(i)
		if !ok {
			continue
		}
		switch {
		case !c.cordoned[i] && margin < c.cfg.RebalanceMargin:
			c.cordoned[i] = true
			c.st.Rebalances++
			c.migrateOff(i, arrival)
		case c.cordoned[i] && margin >= c.cfg.UncordonMargin:
			c.cordoned[i] = false
		}
	}
}

// nodeMargin reads node i's free-block margin from its health report —
// the same flash.HealthFromSnapshot pure function behind /debug/health,
// over the node's own metrics registry. Caller holds c.mu.
func (c *Cluster) nodeMargin(i int) (float64, bool) {
	o := c.nodes[i].Obs
	if o == nil || o.Registry == nil {
		return 0, false
	}
	rep, err := flash.HealthFromSnapshot(o.Registry.Snapshot(), "flash")
	if err != nil || rep.FreeBlockMargin < 0 {
		return 0, false
	}
	return rep.FreeBlockMargin, true
}

// migrateOff moves every key held by node i to a healthy replacement:
// copy the object from a live holder to the new node, delete it from
// the cordoned one (its cleaner gets the space back), and rewrite the
// directory entry — promoting the first surviving replica when the
// primary moves. Sweeps run in sorted (tenant, key) order so the
// migration traffic is deterministic. Caller holds c.mu.
func (c *Cluster) migrateOff(i int, arrival sim.Time) {
	tenants := make([]string, 0, len(c.dir))
	for tn := range c.dir {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	for _, tn := range tenants {
		sess := c.sessions[tn]
		if sess == nil {
			continue
		}
		m := c.dir[tn]
		keys := make([]uint64, 0, len(m))
		for k, e := range m {
			if holdsNode(e.holders, i) {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, k := range keys {
			e := m[k]
			repl := c.ringReplacement(tn, k, e.holders)
			if repl < 0 {
				continue // nowhere healthy to go; keep the degraded placement
			}
			if !c.copyObject(sess, e, k, repl, arrival) {
				continue
			}
			// Drop the object from the cordoned node so its cleaner can
			// reclaim the space — the point of the migration.
			if !c.down[i] {
				if src, err := sess.nodeSession(i); err == nil {
					src.Do(server.Request{Kind: server.OpDelete, Key: k, Arrival: arrival})
				}
			}
			holders := make([]int, 0, len(e.holders))
			for _, h := range e.holders {
				if h != i {
					holders = append(holders, h)
				}
			}
			e.holders = append(holders, repl)
			c.st.MigratedKeys++
		}
	}
}

// copyObject replicates key k onto node repl, reading from the first
// live holder (including a cordoned one — cordoned is not down). It
// reports whether the new copy is in place. Caller holds c.mu.
func (c *Cluster) copyObject(sess *Session, e *entry, k uint64, repl int, arrival sim.Time) bool {
	var data []byte
	if e.size > 0 {
		got := false
		for _, h := range e.holders {
			if c.down[h] {
				continue
			}
			src, err := sess.nodeSession(h)
			if err != nil {
				continue
			}
			r, err := src.Do(server.Request{Kind: server.OpGet, Key: k, Offset: 0, Size: e.size, Arrival: arrival})
			if err != nil {
				continue
			}
			data = r.Data
			got = true
			break
		}
		if !got {
			return false
		}
	}
	dst, err := sess.nodeSession(repl)
	if err != nil {
		return false
	}
	_, err = dst.Do(server.Request{Kind: server.OpPut, Key: k, Offset: 0, Data: data, Arrival: arrival})
	return err == nil
}

func holdsNode(holders []int, n int) bool {
	for _, h := range holders {
		if h == n {
			return true
		}
	}
	return false
}

// KillNode marks node i down: requests route around it, reads fail over
// to replicas, and writes skip it. The node's unsynced state is
// considered lost (RestartNode remounts from flash, the power-failure
// contract).
func (c *Cluster) KillNode(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down[i] = true
}

// RestartNode recovers a killed node through its Restart hook (remount
// from flash — synced data survives, unsynced DRAM is lost) and returns
// it to service. Cached tenant sessions on the node are invalidated, and
// a heal sweep re-replicates keys whose holder set shrank while the node
// was away (writes drop a holder that misses them), so the cluster
// returns to its target copy count instead of running degraded forever.
func (c *Cluster) RestartNode(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.down[i] {
		return fmt.Errorf("cluster: node %d is not down", i)
	}
	n := c.nodes[i]
	if n.Restart == nil {
		return fmt.Errorf("cluster: node %d has no restart hook", i)
	}
	srv, err := n.Restart()
	if err != nil {
		return fmt.Errorf("cluster: restarting node %d: %w", i, err)
	}
	n.Srv = srv
	c.down[i] = false
	c.gen[i]++
	c.heal()
	return nil
}

// heal re-replicates every directory entry holding fewer than the target
// copy count, copying each under-replicated object onto the first
// healthy non-holder clockwise of its key. Sweeps run in sorted
// (tenant, key) order for determinism. Caller holds c.mu.
func (c *Cluster) heal() {
	now := c.maxClock()
	want := c.cfg.Replicas + 1
	tenants := make([]string, 0, len(c.dir))
	for tn := range c.dir {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	for _, tn := range tenants {
		sess := c.sessions[tn]
		if sess == nil {
			continue
		}
		m := c.dir[tn]
		keys := make([]uint64, 0, len(m))
		for k, e := range m {
			if len(e.holders) < want {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, k := range keys {
			e := m[k]
			for len(e.holders) < want {
				repl := c.ringReplacement(tn, k, e.holders)
				if repl < 0 {
					break // no healthy non-holder left
				}
				if !c.copyObject(sess, e, k, repl, now) {
					break
				}
				e.holders = append(e.holders, repl)
				c.st.HealedKeys++
			}
		}
	}
}

// maxClock reports the furthest node clock. Caller holds c.mu.
func (c *Cluster) maxClock() sim.Time {
	var t sim.Time
	for _, n := range c.nodes {
		if now := n.Clock.Now(); now > t {
			t = now
		}
	}
	return t
}

// NodeDown reports whether node i is marked down.
func (c *Cluster) NodeDown(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[i]
}

// Cordoned reports whether node i is cordoned off from new placements.
func (c *Cluster) Cordoned(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cordoned[i]
}

// Stats reports the aggregate request accounting behind the Service
// interface (logical requests, not per-node fan-out).
func (c *Cluster) Stats() server.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return server.Stats{
		Completed:    c.st.Completed,
		Shed:         c.st.Shed,
		NotFound:     c.st.NotFound,
		BatchedSyncs: c.st.BatchedSyncs,
	}
}

// ClusterStats reports the router's full accounting, including the
// rebalance and replication counters.
func (c *Cluster) ClusterStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// Drain drains every live node in index order: each stops admitting and
// flushes to stable storage. The first error is reported after every
// node has been attempted.
func (c *Cluster) Drain() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for i, n := range c.nodes {
		if c.down[i] {
			continue
		}
		if err := n.Srv.Drain(); err != nil && first == nil {
			first = fmt.Errorf("cluster: draining node %d: %w", i, err)
		}
	}
	return first
}

// Now reports the cluster's virtual time: the furthest node clock (the
// cluster has finished an instant only when every node has).
func (c *Cluster) Now() sim.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxClock()
}
