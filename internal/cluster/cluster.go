// Package cluster is the router/placement tier over N in-process
// ssmserve nodes — the scale-out layer the E12 saturation study calls
// for: one simulated card saturates at ~32 open-loop clients, so serving
// beyond that means sharding tenants' keys across many cards, each
// behind its own internal/server instance with its own cleaner, write
// buffer and admission controller.
//
// Three mechanisms make the tier a cluster rather than a load balancer:
//
//   - placement: a consistent-hash ring (virtual points per node) with a
//     directory of per-key overrides — see placement.go;
//   - replication: every write lands on the key's primary plus K
//     replicas with sync-commit semantics matching the single node's
//     group commit (a replicated write's latency is the slowest
//     holder's, and sync fans out to every node so a tenant's data is
//     stable everywhere it lives). A holder that misses a write leaves
//     the key's holder set and is remembered as stale until its old
//     copy is purged; a delete that misses a holder leaves a tombstone
//     behind, so the key can never be resurrected from the copy that
//     node still holds. The periodic health sweep re-replicates
//     under-copied keys and propagates pending deletes as soon as the
//     cluster can, not only after a node restart;
//   - rebalancing: the router watches each node's SMART-style health
//     report (flash.HealthFromSnapshot over the node's own metrics
//     registry — the same pure function behind /debug/health) and, when
//     a card ages toward its free-block margin, cordons the node and
//     migrates its keys to healthier cards, deleting the moved objects
//     so the aging card's cleaner gets its space back.
//
// Admission-control sheds stay node-local by design: a write shed by one
// node's watermark controller is retried against the same node with
// bounded virtual-time backoff (the idle gap is exactly what its cleaner
// needs), and only surfaces to the caller if the node stays overloaded —
// other nodes never inherit the overload, which E14 measures.
//
// The Cluster implements server.Service, so the TCP front end and the
// deterministic N-way-merge workload driver (server.RunWorkload) run
// against a cluster exactly as they run against one node. Everything is
// virtual-time deterministic: requests are serialised under the cluster
// mutex, placement is a pure function of (tenant, key, node names), and
// migration sweeps iterate in sorted order, so a seeded workload yields
// byte-identical results at any host parallelism.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/server"
	"ssmobile/internal/sim"
)

// ErrUnavailable reports a request whose every holder is down — the
// cluster equivalent of a dead disk. Callers should treat it as
// retriable once nodes return.
var ErrUnavailable = errors.New("cluster: no live holder for key")

// Node is one ssmserve node: a server over its own card stack. The
// caller (core's experiments, cmd/ssmserve) assembles the stack and
// hands the cluster the pieces the router needs.
type Node struct {
	// Name identifies the node on the hash ring; it must be unique and
	// stable (placement is a pure function of the name set).
	Name string
	// Srv is the node's server. Replaced by RestartNode.
	Srv *server.Server
	// Clock is the node's virtual clock (each node owns its stack's
	// single-threaded simulation time).
	Clock *sim.Clock
	// Obs is the node's private observer; its registry carries the wear
	// telemetry the router's health checks read. Required for
	// rebalancing; a nil Obs (or one without a registry) disables health
	// checks for the node.
	Obs *obs.Observer
	// Restart, if set, recovers the node after a kill — remounting the
	// card as after a power failure (synced data survives, unsynced DRAM
	// is lost) and returning a fresh server over the recovered stack.
	Restart func() (*server.Server, error)
}

// Config parameterises the router.
type Config struct {
	// Replicas is the number of extra copies beyond the primary
	// (default 1, capped at nodes-1; 0 on a single-node cluster).
	Replicas int
	// VirtualPoints per node on the hash ring (default 16).
	VirtualPoints int
	// RebalanceMargin is the free-block margin below which a node is
	// cordoned and its keys migrated away (default 0.04); UncordonMargin
	// re-admits it for new placements (default 2×RebalanceMargin —
	// hysteresis, so placement does not flap).
	RebalanceMargin, UncordonMargin float64
	// RebalanceCheckEvery is the number of cluster requests between
	// health sweeps (default 64).
	RebalanceCheckEvery int
	// ShedRetries bounds in-place retries of a write shed by a node's
	// admission control; ShedBackoff is the virtual-time backoff before
	// the first retry, doubling per attempt (defaults 2 and 50ms). The
	// backoff is the point: the idle gap is cleaner time.
	ShedRetries int
	ShedBackoff sim.Duration
	// Obs is the router's own observer — distinct from the per-node
	// observers, which carry each card's telemetry. The router registers
	// its fan-out metrics (per-holder replica latency, the straggler
	// gauge, fleet health gauges) here, records cluster-level request
	// spans into its tracer, and appends control-plane events to its
	// attached EventLog. Nil disables router telemetry entirely; there is
	// deliberately no fallback to the process default observer, so
	// concurrent experiment cells never race to register on a shared
	// registry.
	Obs *obs.Observer
}

func (c Config) withDefaults(nodes int) Config {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Replicas > nodes-1 {
		c.Replicas = nodes - 1
	}
	if c.VirtualPoints <= 0 {
		c.VirtualPoints = 16
	}
	if c.RebalanceMargin <= 0 {
		c.RebalanceMargin = 0.04
	}
	if c.UncordonMargin <= c.RebalanceMargin {
		c.UncordonMargin = 2 * c.RebalanceMargin
	}
	if c.RebalanceCheckEvery <= 0 {
		c.RebalanceCheckEvery = 64
	}
	if c.ShedRetries <= 0 {
		c.ShedRetries = 2
	}
	if c.ShedBackoff <= 0 {
		c.ShedBackoff = 50 * sim.Millisecond
	}
	return c
}

// Stats is the router's own accounting — logical requests, not the
// per-node fan-out (node servers keep their own server.Stats).
type Stats struct {
	// Completed counts logical requests served; Shed the writes that
	// stayed overloaded after retries; NotFound and BatchedSyncs as on a
	// single node (a cluster sync is batched only if every node batched).
	Completed, Shed, NotFound, BatchedSyncs int64
	// ShedRetries counts in-place retries after a node-local shed;
	// ReplicaSheds counts replica writes dropped because the replica
	// stayed overloaded (the primary copy is intact — the periodic
	// health sweep's heal pass re-replicates the key back to the target
	// copy count); SkippedReplicaWrites counts writes skipped because a
	// holder was down or still held a stale, unpurged copy.
	ShedRetries, ReplicaSheds, SkippedReplicaWrites int64
	// Rebalances counts cordon events; MigratedKeys the keys moved off
	// cordoned nodes; HealedKeys the keys re-replicated back to the
	// target copy count after a restart; ReadFailovers the reads served
	// by a replica because the primary was down or missing the object.
	Rebalances, MigratedKeys, HealedKeys, ReadFailovers int64
}

// entry is one written key's directory record. Beyond the live holder
// set it remembers which nodes still hold obsolete bytes for the key:
// a holder that misses a put/truncate (down, or overloaded past the
// retry budget) leaves holders and joins stale, and a delete that
// misses a holder keeps the entry as a tombstone (deleted=true, no
// holders) until every stale copy is purged — without the tombstone,
// the entry would vanish, holdersFor would fall back to ring placement,
// and a read could resurrect the deleted key from the copy the absent
// node still holds.
type entry struct {
	holders []int // primary first
	size    int64 // current object length upper bound, for migration reads
	deleted bool  // tombstone: deleted, but a stale copy survives somewhere
	stale   []int // sorted nodes holding obsolete bytes, pending purge
}

// Cluster routes requests across nodes. All methods are safe for
// concurrent use; requests serialise on the cluster mutex (each node's
// stack is a single-threaded simulation, and deterministic routing needs
// a total order anyway).
type Cluster struct {
	mu       sync.Mutex
	cfg      Config
	nodes    []*Node
	down     []bool
	cordoned []bool
	gen      []uint64 // bumped on restart; invalidates cached node sessions
	ring     []ringPoint
	dir      map[string]map[uint64]*entry
	sessions map[string]*Session
	opsSince int
	degraded bool // some entry is under-copied or has stale copies to purge
	st       Stats

	// Router observability (see observe.go). obs is cfg.Obs (may be nil —
	// every probe is nil-safe); clock is the router's own virtual clock,
	// advanced to max(arrival, previous position) per request so cluster
	// spans and events carry coherent times without ever touching a node
	// clock. repLat holds the per-rank holder-latency histograms (rank 0
	// is the primary), straggler the slowest-minus-median gauge, and the
	// fleet gauges summarise directory degradation and per-node state.
	obs                              *obs.Observer
	clock                            *sim.Clock
	repLat                           []*obs.Histogram
	straggler                        *obs.Gauge
	underRepl, tombKeys, staleCopies *obs.Gauge
	nodeUp, nodeCordoned             []*obs.Gauge
	hl                               []holderLat // scratch: last request's fan-out
	latScratch                       []holderLat // scratch: straggler-gap sort
	lastReadFailovers                int64       // ReadFailovers at last finishRequest
}

// New builds a router over the given nodes.
func New(nodes []*Node, cfg Config) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	names := make([]string, len(nodes))
	for i, n := range nodes {
		if n == nil || n.Srv == nil || n.Clock == nil {
			return nil, fmt.Errorf("cluster: node %d needs Srv and Clock", i)
		}
		if n.Name == "" {
			n.Name = fmt.Sprintf("n%d", i)
		}
		names[i] = n.Name
		for j := 0; j < i; j++ {
			if names[j] == n.Name {
				return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
			}
		}
	}
	cfg = cfg.withDefaults(len(nodes))
	c := &Cluster{
		cfg:      cfg,
		nodes:    nodes,
		down:     make([]bool, len(nodes)),
		cordoned: make([]bool, len(nodes)),
		gen:      make([]uint64, len(nodes)),
		ring:     buildRing(names, cfg.VirtualPoints),
		dir:      make(map[string]map[uint64]*entry),
		sessions: make(map[string]*Session),
	}
	c.initObservability()
	return c, nil
}

// Nodes reports the node list (for CLIs and tests).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Session routes one tenant's requests. Obtain via OpenSession; safe
// for concurrent use (requests serialise on the cluster mutex).
type Session struct {
	c      *Cluster
	tenant string
	sess   []server.RequestDoer
	sgen   []uint64
}

// OpenSession starts (or resumes) a tenant session — the server.Service
// entry point. Node sessions open lazily, only on nodes the tenant's
// requests actually reach.
func (c *Cluster) OpenSession(tenant string) (server.RequestDoer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.sessions[tenant]; ok {
		return s, nil
	}
	s := &Session{
		c:      c,
		tenant: tenant,
		sess:   make([]server.RequestDoer, len(c.nodes)),
		sgen:   make([]uint64, len(c.nodes)),
	}
	c.sessions[tenant] = s
	return s, nil
}

// nodeSession returns the tenant's session on node i, opening (or
// reopening after a restart) as needed. Caller holds c.mu.
func (s *Session) nodeSession(i int) (server.RequestDoer, error) {
	c := s.c
	if s.sess[i] == nil || s.sgen[i] != c.gen[i] {
		d, err := c.nodes[i].Srv.OpenSession(s.tenant)
		if err != nil {
			return nil, err
		}
		s.sess[i] = d
		s.sgen[i] = c.gen[i]
	}
	return s.sess[i], nil
}

// Do routes one request: sync fans out to every live node, reads go to
// the first live holder (failing over across replicas), and writes land
// on every live holder with node-local shed retry.
//
// Around the dispatch the router runs its own observability: a
// cluster-layer request span on the router clock, one child span per
// holder the fan-out touched (carrying the holder's node name and its
// individual latency — the decomposition of "acknowledged at the
// slowest holder"), and the per-rank replica-latency histograms. None
// of it reads or advances a node clock, so results are byte-identical
// with telemetry on or off.
func (s *Session) Do(req server.Request) (server.Response, error) {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opsSince++
	if c.opsSince >= c.cfg.RebalanceCheckEvery {
		c.opsSince = 0
		c.checkHealth(req.Arrival)
	}
	start, tc := c.beginRequest(req)
	c.hl = c.hl[:0]
	var resp server.Response
	var err error
	switch req.Kind {
	case server.OpSync:
		resp, err = s.doSync(req)
	case server.OpGet:
		resp, err = s.doGet(req)
	default:
		resp, err = s.doWrite(req)
	}
	c.finishRequest(tc, req, start, resp, err)
	return resp, err
}

// doSync fans the sync to every live node in index order — a tenant's
// keys may live anywhere, and the sync-commit contract is "stable
// everywhere it lives". The cluster sync is batched only if every node
// absorbed it into an earlier group commit; its latency is the slowest
// node's (the commit is acknowledged when the last replica is stable).
func (s *Session) doSync(req server.Request) (server.Response, error) {
	c := s.c
	var resp server.Response
	live := 0
	allBatched := true
	for i := range c.nodes {
		if c.down[i] {
			continue
		}
		sess, err := s.nodeSession(i)
		if err != nil {
			return server.Response{}, err
		}
		r, err := sess.Do(req)
		if err != nil {
			return server.Response{}, err
		}
		live++
		c.hl = append(c.hl, holderLat{node: i, lat: r.Latency})
		if !r.Batched {
			allBatched = false
		}
		if r.Latency > resp.Latency {
			resp.Latency = r.Latency
		}
	}
	if live == 0 {
		return server.Response{}, ErrUnavailable
	}
	resp.Batched = allBatched
	if allBatched {
		c.st.BatchedSyncs++
	}
	c.st.Completed++
	return resp, nil
}

// doGet reads from the key's first live holder, failing over to the
// next replica when the preferred one is down or (after a lossy
// restart) no longer has the object. A tombstoned key is not found by
// definition — the delete was acknowledged; the stale copy an absent
// holder still has must never be served.
func (s *Session) doGet(req server.Request) (server.Response, error) {
	c := s.c
	if e := c.lookup(s.tenant, req.Key); e != nil && e.deleted {
		c.st.NotFound++
		return server.Response{}, server.ErrNotFound
	}
	holders := c.holdersFor(s.tenant, req.Key)
	var lastErr error
	tried := 0
	for rank, h := range holders {
		if c.down[h] {
			continue
		}
		sess, err := s.nodeSession(h)
		if err != nil {
			return server.Response{}, err
		}
		r, err := sess.Do(req)
		if err == nil {
			if rank > 0 {
				c.st.ReadFailovers++
			}
			c.hl = append(c.hl, holderLat{node: h, lat: r.Latency})
			c.st.Completed++
			return r, nil
		}
		tried++
		lastErr = err
		if !errors.Is(err, server.ErrNotFound) {
			return server.Response{}, err
		}
	}
	if tried == 0 {
		return server.Response{}, ErrUnavailable
	}
	c.st.NotFound++
	return server.Response{}, lastErr
}

// doWrite applies a put/truncate/delete to every live holder, primary
// first. A primary shed (after bounded retry) sheds the whole request;
// a replica shed is dropped and counted — the shed stays node-local
// instead of cascading through the cluster. The response carries the
// slowest holder's latency: sync-commit semantics, a write is
// acknowledged at the pace of its last replica.
//
// A holder that misses the write — down, still overloaded after the
// retry budget, or still carrying an unpurged stale copy — leaves the
// key's holder set: its copy is stale, and a stale replica must never
// serve a later read. Misses are remembered on the entry's stale list
// (for a delete, as a tombstone) so the obsolete copy is purged by the
// periodic heal pass, or here, before a new write lands on the key.
func (s *Session) doWrite(req server.Request) (server.Response, error) {
	c := s.c
	e := c.lookup(s.tenant, req.Key)
	if e != nil && len(e.stale) > 0 {
		// Purge obsolete copies on live nodes before writing: a node
		// that missed a delete or write must never take a fresh partial
		// write on top of its old bytes.
		s.purgeStale(e, req.Key, req.Arrival)
		if e.deleted && len(e.stale) == 0 {
			// The delete has now reached every copy; the tombstone is done.
			delete(c.dir[s.tenant], req.Key)
			c.logEvent(req.Arrival, obs.EventTombstoneResolve, "",
				"pending delete reached every copy", 1)
			e = nil
		}
	}
	holders := c.holdersFor(s.tenant, req.Key)
	var resp server.Response
	applied := make([]int, 0, len(holders))
	var missed []int
	// A miss only matters if the node actually holds the key's bytes:
	// a past holder or an already-stale copy. A ring-placed node that
	// never took the key has nothing to go stale.
	wasHolder := func(h int) bool {
		return e != nil && (holdsNode(e.holders, h) || holdsNode(e.stale, h))
	}
	for _, h := range holders {
		if c.down[h] || (e != nil && holdsNode(e.stale, h)) {
			c.st.SkippedReplicaWrites++
			if wasHolder(h) {
				missed = append(missed, h)
			}
			continue
		}
		r, err := s.doWithRetry(h, req)
		switch {
		case err == nil:
			if len(applied) == 0 {
				resp = r
			} else if r.Latency > resp.Latency {
				resp.Latency = r.Latency
			}
			applied = append(applied, h)
			c.hl = append(c.hl, holderLat{node: h, lat: r.Latency})
		case errors.Is(err, server.ErrOverloaded):
			if len(applied) == 0 {
				// The effective primary stayed overloaded through the
				// retry budget: the write sheds, and no replica was
				// touched — admission control stays node-local.
				c.st.Shed++
				return server.Response{}, err
			}
			c.st.ReplicaSheds++
			c.logEvent(req.Arrival, obs.EventReplicaShed, c.nodes[h].Name,
				"replica overloaded past the retry budget; primary copy intact", 1)
			if wasHolder(h) {
				missed = append(missed, h)
			}
		case errors.Is(err, server.ErrNotFound):
			if len(applied) == 0 {
				c.st.NotFound++
				return server.Response{}, err
			}
			// A replica missing the object (post-restart, pre-heal)
			// cannot apply a truncate/delete of it; dropping it from the
			// holder set below is exactly right.
		default:
			return server.Response{}, err
		}
	}
	if len(applied) == 0 {
		return server.Response{}, ErrUnavailable
	}
	c.noteWrite(s.tenant, applied, missed, req)
	c.st.Completed++
	return resp, nil
}

// purgeStale deletes the key's obsolete copies from the live nodes on
// the entry's stale list; nodes that are down, or whose delete fails,
// stay listed for a later pass. Caller holds c.mu.
func (s *Session) purgeStale(e *entry, key uint64, arrival sim.Time) {
	c := s.c
	kept := e.stale[:0]
	for _, h := range e.stale {
		if c.down[h] {
			kept = append(kept, h)
			continue
		}
		sess, err := s.nodeSession(h)
		if err != nil {
			kept = append(kept, h)
			continue
		}
		_, err = sess.Do(server.Request{Kind: server.OpDelete, Key: key, Arrival: arrival})
		if err != nil && !errors.Is(err, server.ErrNotFound) {
			kept = append(kept, h)
		}
	}
	e.stale = kept
}

// doWithRetry serves req on node h, retrying a shed write with bounded
// exponential virtual-time backoff: each retry arrives later, and the
// idle gap is exactly the time the node's cleaner needs to free blocks
// and its buffer needs to drain. Caller holds c.mu.
func (s *Session) doWithRetry(h int, req server.Request) (server.Response, error) {
	c := s.c
	sess, err := s.nodeSession(h)
	if err != nil {
		return server.Response{}, err
	}
	r, err := sess.Do(req)
	if req.Kind != server.OpPut && req.Kind != server.OpTruncate {
		return r, err
	}
	backoff := c.cfg.ShedBackoff
	for attempt := 0; attempt < c.cfg.ShedRetries && errors.Is(err, server.ErrOverloaded); attempt++ {
		c.st.ShedRetries++
		base := req.Arrival
		if base == 0 || base < c.nodes[h].Clock.Now() {
			base = c.nodes[h].Clock.Now()
		}
		req.Arrival = base.Add(backoff)
		backoff *= 2
		r, err = sess.Do(req)
	}
	return r, err
}

// lookup returns the key's directory entry, nil if the key has none.
// Caller holds c.mu.
func (c *Cluster) lookup(tenant string, key uint64) *entry {
	if m := c.dir[tenant]; m != nil {
		return m[key]
	}
	return nil
}

// holdersFor resolves the key's holder set: the directory entry when the
// key has live copies, the ring default otherwise (including for a
// tombstoned key — a fresh write to it places anew). Caller holds c.mu.
func (c *Cluster) holdersFor(tenant string, key uint64) []int {
	if e := c.lookup(tenant, key); e != nil && !e.deleted {
		return e.holders
	}
	return c.ringPlace(tenant, key)
}

// noteWrite records a write in the directory: puts and truncates pin
// the holder set to the nodes that actually applied the write and track
// the object's length (migration needs to know how much to copy); a
// node that held the key but missed the write joins the stale list. A
// delete drops the entry only when no stale copy survives it; otherwise
// the entry stays as a tombstone until the heal pass (or a later write
// to the key) purges the remaining copies — dropping it early would let
// ring placement route a read back to the stale copy. Caller holds
// c.mu.
func (c *Cluster) noteWrite(tenant string, applied, missed []int, req server.Request) {
	m := c.dir[tenant]
	if req.Kind == server.OpDelete {
		if m == nil {
			return
		}
		e := m[req.Key]
		if e == nil {
			return
		}
		stale := e.stale
		for _, h := range missed {
			stale = addStale(stale, h)
		}
		if len(stale) == 0 {
			delete(m, req.Key)
			return
		}
		if !e.deleted {
			c.logEvent(req.Arrival, obs.EventTombstoneCreate, c.nodeNames(stale),
				"delete missed a holder; key pinned until every copy is purged", 1)
		}
		e.deleted = true
		e.holders = e.holders[:0]
		e.size = 0
		e.stale = stale
		c.degraded = true
		return
	}
	if m == nil {
		m = make(map[uint64]*entry)
		c.dir[tenant] = m
	}
	e := m[req.Key]
	if e == nil {
		e = &entry{}
		m[req.Key] = e
	}
	e.deleted = false
	e.holders = append(e.holders[:0], applied...)
	for _, h := range missed {
		e.stale = addStale(e.stale, h)
	}
	switch req.Kind {
	case server.OpPut:
		if end := req.Offset + int64(len(req.Data)); end > e.size {
			e.size = end
		}
	case server.OpTruncate:
		e.size = req.Size
	}
	if len(e.holders) < c.cfg.Replicas+1 || len(e.stale) > 0 {
		c.degraded = true
	}
}

// addStale inserts node n into the sorted stale list if absent.
func addStale(stale []int, n int) []int {
	i := sort.SearchInts(stale, n)
	if i < len(stale) && stale[i] == n {
		return stale
	}
	stale = append(stale, 0)
	copy(stale[i+1:], stale[i:])
	stale[i] = n
	return stale
}

// removeNode drops node n from the list, preserving order.
func removeNode(list []int, n int) []int {
	for i, h := range list {
		if h == n {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// checkHealth sweeps every live node's SMART report and cordons nodes
// whose free-block margin has sunk below the rebalance threshold,
// migrating their keys to healthier cards. Recovered nodes (margin back
// above the uncordon threshold, e.g. after migration freed their space)
// rejoin placement. When any directory entry is degraded — under the
// target copy count, or carrying stale copies to purge — the sweep also
// runs the heal pass, so durability lost to a skipped or shed replica
// write is restored on the next sweep instead of waiting for some node
// to restart. Caller holds c.mu.
func (c *Cluster) checkHealth(arrival sim.Time) {
	for i := range c.nodes {
		if c.down[i] {
			continue
		}
		margin, ok := c.nodeMargin(i)
		if !ok {
			continue
		}
		switch {
		case !c.cordoned[i] && margin < c.cfg.RebalanceMargin:
			c.cordoned[i] = true
			c.st.Rebalances++
			c.logEvent(arrival, obs.EventCordon, c.nodes[i].Name,
				fmt.Sprintf("free-block margin %.3f < %.3f", margin, c.cfg.RebalanceMargin), 0)
			moved := c.migrateOff(i, arrival)
			if moved > 0 {
				c.logEvent(arrival, obs.EventMigrate, c.nodes[i].Name,
					"keys moved off the cordoned card to healthier nodes", moved)
			}
			// Capture the span tail around the rebalance: the requests that
			// aged the card into its margin are the interesting ones.
			c.dump("cordon")
		case c.cordoned[i] && margin >= c.cfg.UncordonMargin:
			c.cordoned[i] = false
			c.logEvent(arrival, obs.EventUncordon, c.nodes[i].Name,
				fmt.Sprintf("free-block margin %.3f >= %.3f", margin, c.cfg.UncordonMargin), 0)
		}
	}
	if c.degraded {
		healedBefore := c.st.HealedKeys
		c.degraded = c.heal() > 0
		if healed := c.st.HealedKeys - healedBefore; healed > 0 {
			c.logEvent(arrival, obs.EventHeal, "",
				"re-replicated under-copied keys to the target copy count", int(healed))
		}
	}
	c.refreshFleetGauges()
}

// nodeMargin reads node i's free-block margin from its health report —
// the same flash.HealthFromSnapshot pure function behind /debug/health,
// over the node's own metrics registry. Caller holds c.mu.
func (c *Cluster) nodeMargin(i int) (float64, bool) {
	o := c.nodes[i].Obs
	if o == nil || o.Registry == nil {
		return 0, false
	}
	rep, err := flash.HealthFromSnapshot(o.Registry.Snapshot(), "flash")
	if err != nil || rep.FreeBlockMargin < 0 {
		return 0, false
	}
	return rep.FreeBlockMargin, true
}

// migrateOff moves every key held by node i to a healthy replacement:
// copy the object from a live holder to the new node, delete it from
// the cordoned one (its cleaner gets the space back), and rewrite the
// directory entry — promoting the first surviving replica when the
// primary moves. Sweeps run in sorted (tenant, key) order so the
// migration traffic is deterministic. It reports how many keys moved.
// Caller holds c.mu.
func (c *Cluster) migrateOff(i int, arrival sim.Time) (moved int) {
	tenants := make([]string, 0, len(c.dir))
	for tn := range c.dir {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	for _, tn := range tenants {
		sess := c.sessions[tn]
		if sess == nil {
			continue
		}
		m := c.dir[tn]
		keys := make([]uint64, 0, len(m))
		for k, e := range m {
			if holdsNode(e.holders, i) {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, k := range keys {
			e := m[k]
			repl := c.ringReplacement(tn, k, e.holders)
			if repl < 0 {
				continue // nowhere healthy to go; keep the degraded placement
			}
			if !c.copyObject(sess, e, k, repl, arrival) {
				continue
			}
			// Drop the object from the cordoned node so its cleaner can
			// reclaim the space — the point of the migration.
			if !c.down[i] {
				if src, err := sess.nodeSession(i); err == nil {
					src.Do(server.Request{Kind: server.OpDelete, Key: k, Arrival: arrival})
				}
			}
			holders := make([]int, 0, len(e.holders))
			for _, h := range e.holders {
				if h != i {
					holders = append(holders, h)
				}
			}
			e.holders = append(holders, repl)
			e.stale = removeNode(e.stale, repl) // the copy just landed is fresh
			c.st.MigratedKeys++
			moved++
		}
	}
	return moved
}

// copyObject replicates key k onto node repl, reading from the first
// live holder (including a cordoned one — cordoned is not down). The
// target is deleted before the copy lands: if repl holds stale bytes
// from a write it missed, a put of the current object over them could
// leave an obsolete tail past the copy's extent — the replica must be
// exact, not a patch. It reports whether the new copy is in place.
// Caller holds c.mu.
func (c *Cluster) copyObject(sess *Session, e *entry, k uint64, repl int, arrival sim.Time) bool {
	var data []byte
	if e.size > 0 {
		got := false
		for _, h := range e.holders {
			if c.down[h] {
				continue
			}
			src, err := sess.nodeSession(h)
			if err != nil {
				continue
			}
			r, err := src.Do(server.Request{Kind: server.OpGet, Key: k, Offset: 0, Size: e.size, Arrival: arrival})
			if err != nil {
				continue
			}
			data = r.Data
			got = true
			break
		}
		if !got {
			return false
		}
	}
	dst, err := sess.nodeSession(repl)
	if err != nil {
		return false
	}
	if _, err := dst.Do(server.Request{Kind: server.OpDelete, Key: k, Arrival: arrival}); err != nil && !errors.Is(err, server.ErrNotFound) {
		return false
	}
	_, err = dst.Do(server.Request{Kind: server.OpPut, Key: k, Offset: 0, Data: data, Arrival: arrival})
	return err == nil
}

func holdsNode(holders []int, n int) bool {
	for _, h := range holders {
		if h == n {
			return true
		}
	}
	return false
}

// KillNode marks node i down: requests route around it, reads fail over
// to replicas, and writes skip it. The node's unsynced state is
// considered lost (RestartNode remounts from flash, the power-failure
// contract).
func (c *Cluster) KillNode(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down[i] = true
	c.logEvent(c.maxClock(), obs.EventKill, c.nodes[i].Name,
		"operator kill; unsynced state lost", 0)
	c.refreshFleetGauges()
	c.dump("kill")
}

// RestartNode recovers a killed node through its Restart hook (remount
// from flash — synced data survives, unsynced DRAM is lost) and returns
// it to service. Cached tenant sessions on the node are invalidated, and
// a heal sweep purges stale copies the node accumulated while away —
// deletes it missed foremost, so a tombstoned key can finally drop —
// and re-replicates keys whose holder set shrank in its absence, so the
// cluster returns to its target copy count.
func (c *Cluster) RestartNode(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.down[i] {
		return fmt.Errorf("cluster: node %d is not down", i)
	}
	n := c.nodes[i]
	if n.Restart == nil {
		return fmt.Errorf("cluster: node %d has no restart hook", i)
	}
	srv, err := n.Restart()
	if err != nil {
		return fmt.Errorf("cluster: restarting node %d: %w", i, err)
	}
	n.Srv = srv
	c.down[i] = false
	c.gen[i]++
	c.logEvent(c.maxClock(), obs.EventRestart, n.Name,
		"remounted from flash; synced data recovered", 0)
	healedBefore := c.st.HealedKeys
	c.degraded = c.heal() > 0
	if healed := c.st.HealedKeys - healedBefore; healed > 0 {
		c.logEvent(c.maxClock(), obs.EventHeal, n.Name,
			"post-restart heal restored the target copy count", int(healed))
	}
	c.refreshFleetGauges()
	c.dump("restart")
	return nil
}

// heal walks every degraded directory entry in sorted (tenant, key)
// order: it purges stale copies from nodes that are live again (for a
// tombstone, that is the pending delete finally reaching the copy that
// missed it — once the last one is purged the entry drops), then
// re-replicates entries holding fewer than the target copy count onto
// the first healthy non-holder clockwise of the key. It reports how
// many entries remain degraded (stale copy on a still-down node, or no
// healthy replacement available) so the periodic sweep knows to come
// back. Caller holds c.mu.
func (c *Cluster) heal() (remaining int) {
	now := c.maxClock()
	want := c.cfg.Replicas + 1
	tenants := make([]string, 0, len(c.dir))
	for tn := range c.dir {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	for _, tn := range tenants {
		sess := c.sessions[tn]
		m := c.dir[tn]
		keys := make([]uint64, 0, len(m))
		for k, e := range m {
			if len(e.stale) > 0 || (!e.deleted && len(e.holders) < want) {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, k := range keys {
			e := m[k]
			if sess == nil {
				remaining++
				continue
			}
			if len(e.stale) > 0 {
				sess.purgeStale(e, k, now)
			}
			if e.deleted {
				if len(e.stale) == 0 {
					delete(m, k)
					c.logEvent(now, obs.EventTombstoneResolve, "",
						"pending delete reached every copy", 1)
				} else {
					remaining++
				}
				continue
			}
			for len(e.holders) < want {
				repl := c.ringReplacement(tn, k, e.holders)
				if repl < 0 {
					break // no healthy non-holder left
				}
				if !c.copyObject(sess, e, k, repl, now) {
					break
				}
				e.holders = append(e.holders, repl)
				e.stale = removeNode(e.stale, repl) // fresh copy, no longer stale
				c.st.HealedKeys++
			}
			if len(e.holders) < want || len(e.stale) > 0 {
				remaining++
			}
		}
	}
	return remaining
}

// maxClock reports the furthest node clock. Caller holds c.mu.
func (c *Cluster) maxClock() sim.Time {
	var t sim.Time
	for _, n := range c.nodes {
		if now := n.Clock.Now(); now > t {
			t = now
		}
	}
	return t
}

// NodeDown reports whether node i is marked down.
func (c *Cluster) NodeDown(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[i]
}

// Cordoned reports whether node i is cordoned off from new placements.
func (c *Cluster) Cordoned(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cordoned[i]
}

// Stats reports the aggregate request accounting behind the Service
// interface (logical requests, not per-node fan-out).
func (c *Cluster) Stats() server.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return server.Stats{
		Completed:    c.st.Completed,
		Shed:         c.st.Shed,
		NotFound:     c.st.NotFound,
		BatchedSyncs: c.st.BatchedSyncs,
	}
}

// ClusterStats reports the router's full accounting, including the
// rebalance and replication counters.
func (c *Cluster) ClusterStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// Drain drains every live node in index order: each stops admitting and
// flushes to stable storage. The first error is reported after every
// node has been attempted.
func (c *Cluster) Drain() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for i, n := range c.nodes {
		if c.down[i] {
			continue
		}
		if err := n.Srv.Drain(); err != nil && first == nil {
			first = fmt.Errorf("cluster: draining node %d: %w", i, err)
		}
	}
	return first
}

// Now reports the cluster's virtual time: the furthest node clock (the
// cluster has finished an instant only when every node has).
func (c *Cluster) Now() sim.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxClock()
}
