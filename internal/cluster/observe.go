// Router observability: the cluster tier's own telemetry, layered over
// (never into) the per-node observers.
//
// Three surfaces, all hanging off Config.Obs:
//
//   - cross-node request tracing: every logical request opens a
//     cluster-layer span on the router's private clock, and the fan-out
//     records one child span per holder carrying the holder's node name
//     and its individual latency. A replicated write is acknowledged at
//     its slowest holder; the child spans are that cost, decomposed.
//     The serve_replica_latency{role,rank} histograms and the straggler
//     gauge (slowest holder minus median) carry the same decomposition
//     as metrics;
//   - the event journal: control-plane transitions (cordon, migrate,
//     heal, kill, restart, replica shed, tombstone lifecycle) append to
//     the EventLog attached to the observer, stamped with virtual time;
//   - fleet gauges: directory degradation (under-replicated keys,
//     tombstones, stale copies) and per-node state (up, cordoned, ring
//     share), refreshed on every health sweep — plain gauges, written
//     under the cluster mutex, never read-through (a read-through gauge
//     collected during a flight-recorder dump taken inside checkHealth
//     would re-enter the cluster mutex and deadlock).
//
// The router clock is the piece that keeps this honest: it advances to
// max(arrival, its own position) per request and never reads or moves a
// node clock, so telemetry cannot feed back into simulated time — the
// determinism tests run the suite traced and untraced and require
// byte-identical stdout.
package cluster

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"ssmobile/internal/obs"
	"ssmobile/internal/server"
	"ssmobile/internal/sim"
)

// holderLat is one holder's share of a fanned-out request: which node,
// and how long its copy of the operation took.
type holderLat struct {
	node int
	lat  sim.Duration
}

// initObservability wires the router's metrics at construction time —
// registration order is fixed (rank histograms, then fleet gauges, then
// per-node gauges in node order), which is what keeps parallel
// experiment runs' merged registries byte-identical.
func (c *Cluster) initObservability() {
	c.obs = c.cfg.Obs
	c.clock = sim.NewClock()
	lbl := obs.Labels{"layer": "cluster"}
	ranks := c.cfg.Replicas + 1
	c.repLat = make([]*obs.Histogram, ranks)
	for r := 0; r < ranks; r++ {
		role := "replica"
		if r == 0 {
			role = "primary"
		}
		c.repLat[r] = c.obs.Histogram("serve_replica_latency", obs.Labels{
			"layer": "cluster", "role": role, "rank": strconv.Itoa(r),
		})
	}
	c.straggler = c.obs.Gauge("serve_replica_straggler_ns", lbl)
	c.underRepl = c.obs.Gauge("cluster_under_replicated_keys", lbl)
	c.tombKeys = c.obs.Gauge("cluster_tombstone_keys", lbl)
	c.staleCopies = c.obs.Gauge("cluster_stale_copies", lbl)
	shares := c.ringShares()
	c.nodeUp = make([]*obs.Gauge, len(c.nodes))
	c.nodeCordoned = make([]*obs.Gauge, len(c.nodes))
	for i, n := range c.nodes {
		nl := obs.Labels{"layer": "cluster", "node": n.Name}
		c.nodeUp[i] = c.obs.Gauge("cluster_node_up", nl)
		c.nodeUp[i].Set(1)
		c.nodeCordoned[i] = c.obs.Gauge("cluster_node_cordoned", nl)
		// The ring never changes after construction, so the share gauge is
		// set once (parts per million — gauges carry int64).
		c.obs.Gauge("cluster_ring_share_ppm", nl).Set(int64(shares[i] * 1e6))
	}
}

// ringShares reports the fraction of the hash circle each node owns: a
// key lands on the first virtual point clockwise of its hash, so point
// p owns the arc from its predecessor to itself.
func (c *Cluster) ringShares() []float64 {
	shares := make([]float64, len(c.nodes))
	if len(c.ring) == 0 {
		return shares
	}
	circle := math.Ldexp(1, 64)
	prev := c.ring[len(c.ring)-1].hash
	for _, p := range c.ring {
		arc := p.hash - prev // uint64 wraparound measures the circular arc
		shares[p.node] += float64(arc) / circle
		prev = p.hash
	}
	return shares
}

// beginRequest advances the router clock to the request's start (its
// arrival, or the clock's position if that is later — arrivals are
// non-decreasing under the workload driver, but retried and replayed
// requests may carry older stamps) and opens the cluster-layer request
// span. Caller holds c.mu.
func (c *Cluster) beginRequest(req server.Request) (sim.Time, *obs.TraceContext) {
	start := req.Arrival
	if now := c.clock.Now(); now > start {
		start = now
	}
	c.clock.AdvanceTo(start)
	return start, c.obs.BeginRequest(c.clock, "cluster", req.Kind.String(), 0)
}

// finishRequest records the fan-out the dispatch left in c.hl: per-rank
// holder-latency histograms and the straggler gauge for writes, one
// holder child span per touched node, and the request root span. Caller
// holds c.mu.
func (c *Cluster) finishRequest(tc *obs.TraceContext, req server.Request, start sim.Time, resp server.Response, err error) {
	isWrite := req.Kind == server.OpPut || req.Kind == server.OpTruncate || req.Kind == server.OpDelete
	if isWrite && len(c.hl) > 0 {
		for rank, h := range c.hl {
			if rank < len(c.repLat) {
				c.repLat[rank].ObserveDuration(h.lat)
			}
		}
		if len(c.hl) > 1 {
			c.straggler.Set(int64(c.stragglerGap()))
		}
	}
	if tc == nil {
		return
	}
	for rank, h := range c.hl {
		role := "replica"
		switch {
		case req.Kind == server.OpSync:
			role = "sync"
		case req.Kind == server.OpGet:
			// The one holder that served the read; rank 0 only if the
			// primary did (no failover).
			if rank == 0 && c.st.ReadFailovers == c.lastReadFailovers {
				role = "primary"
			}
		case rank == 0:
			role = "primary"
		}
		tc.HolderSpan(c.nodes[h.node].Name, role, start, start.Add(h.lat), 0, obs.OutcomeOK)
	}
	c.lastReadFailovers = c.st.ReadFailovers
	end := start
	if err == nil && resp.Latency > 0 {
		end = start.Add(resp.Latency)
	}
	if end > c.clock.Now() {
		c.clock.AdvanceTo(end)
	}
	tc.Finish(int64(resp.N), err)
}

// stragglerGap reports the last fan-out's slowest-holder latency minus
// the median holder latency — the tail cost of "acknowledged at the
// slowest holder". Caller holds c.mu; len(c.hl) >= 2.
func (c *Cluster) stragglerGap() sim.Duration {
	c.latScratch = append(c.latScratch[:0], c.hl...)
	sort.Slice(c.latScratch, func(a, b int) bool { return c.latScratch[a].lat < c.latScratch[b].lat })
	n := len(c.latScratch)
	return c.latScratch[n-1].lat - c.latScratch[(n-1)/2].lat
}

// logEvent appends one control-plane event to the journal attached to
// the router's observer; with no journal attached it costs a nil check.
func (c *Cluster) logEvent(t sim.Time, typ, node, cause string, keys int) {
	if l := c.obs.EventLog(); l != nil {
		l.Append(obs.Event{Time: t, Type: typ, Node: node, Cause: cause, Keys: keys})
	}
}

// dump captures a flight record through the recorder attached to the
// router's observer, if any — the cordon/kill/restart black-box hooks.
func (c *Cluster) dump(reason string) {
	if fr := c.obs.FlightRecorder(); fr != nil {
		fr.Dump(reason)
	}
}

// nodeNames joins the named nodes' display names ("n1+n3") for event
// fields that concern several nodes at once.
func (c *Cluster) nodeNames(idx []int) string {
	names := make([]string, len(idx))
	for i, n := range idx {
		names[i] = c.nodes[n].Name
	}
	return strings.Join(names, "+")
}

// ReplicaLatency exposes the router's per-rank holder-latency histogram
// (rank 0 is the primary) for after-the-run analysis — E16's per-holder
// p99 decomposition reads it directly. Nil when the rank is out of
// range.
func (c *Cluster) ReplicaLatency(rank int) *sim.Histogram {
	if rank < 0 || rank >= len(c.repLat) {
		return nil
	}
	return c.repLat[rank].Sim()
}

// StragglerGapNS reports the straggler gauge: the last replicated
// write's slowest-holder latency minus its median holder latency, in
// nanoseconds.
func (c *Cluster) StragglerGapNS() int64 {
	return c.straggler.Value()
}
