// Fleet-observability tests over real node stacks: the event journal's
// exact agreement with the cluster counters under kill/restart, the
// fleet rollup's pure-function contract, and the admin-endpoint
// regression test (node-labelled /metrics, /debug/fleet, /debug/events
// scraped over HTTP exactly as an operator would).
package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ssmobile/internal/cluster"
	"ssmobile/internal/core"
	"ssmobile/internal/obs"
	"ssmobile/internal/server"
	"ssmobile/internal/sim"
)

// newObservedCluster assembles n fresh node stacks behind a router with
// a shared base observer carrying an event journal — the ssmserve
// cluster-mode layout — and returns the cluster, the base observer, and
// the per-node private observers.
func newObservedCluster(t *testing.T, n int, cfg cluster.Config) (*cluster.Cluster, *obs.Observer, []*cluster.Node, []*obs.Observer) {
	t.Helper()
	base := obs.New(0)
	base.SetEventLog(obs.NewEventLog(0))
	nodes := make([]*cluster.Node, n)
	privs := make([]*obs.Observer, n)
	for i := range nodes {
		node, priv, err := core.NewClusterNode(core.ClusterNodeConfig{
			Name: fmt.Sprintf("n%d", i),
			System: core.SolidStateConfig{
				DRAMBytes:       8 << 20,
				FlashBytes:      8 << 20,
				BufferBytes:     1 << 20,
				RBoxBytes:       512 << 10,
				IdleCleanBlocks: 24,
				WriteBackDelay:  2 * sim.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i], privs[i] = node, priv
	}
	cfg.Obs = base
	cl, err := cluster.New(nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl, base, nodes, privs
}

func countEvents(l *obs.EventLog, typ string) (n int, keys int) {
	for _, ev := range l.Events() {
		if ev.Type == typ {
			n++
			keys += ev.Keys
		}
	}
	return n, keys
}

// TestEventJournalMatchesClusterStats drives a 3-node cluster through a
// kill/restart cycle and requires the journal to agree exactly with the
// cluster's own counters: every heal's key count, every replica shed,
// every tombstone created and resolved, every cordon — the journal is an
// account of what happened, not a sampling of it. Runs under -race in CI
// to also exercise the journal's locking.
func TestEventJournalMatchesClusterStats(t *testing.T) {
	cl, base, _, _ := newObservedCluster(t, 3, cluster.Config{Replicas: 1, RebalanceCheckEvery: 8})
	el := base.EventLog()
	sess, err := cl.OpenSession("t")
	if err != nil {
		t.Fatal(err)
	}
	at := cl.Now()
	do := func(req server.Request) (server.Response, error) {
		at = at.Add(50 * sim.Millisecond)
		req.Arrival = at
		return sess.Do(req)
	}

	const keys = 24
	for k := uint64(0); k < keys; k++ {
		if _, err := do(server.Request{Kind: server.OpPut, Key: k, Data: payloadFor(k, 1)}); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	if _, err := do(server.Request{Kind: server.OpSync}); err != nil {
		t.Fatal(err)
	}

	cl.KillNode(0)
	// Writes while the node is down: replica sheds and, for deletes,
	// tombstones that resolve on restart.
	for k := uint64(0); k < keys; k++ {
		if _, err := do(server.Request{Kind: server.OpPut, Key: k, Data: payloadFor(k, 2)}); err != nil {
			t.Fatalf("put %d while down: %v", k, err)
		}
	}
	for k := uint64(0); k < 4; k++ {
		if _, err := do(server.Request{Kind: server.OpDelete, Key: k}); err != nil {
			t.Fatalf("delete %d while down: %v", k, err)
		}
	}
	if err := cl.RestartNode(0); err != nil {
		t.Fatal(err)
	}
	// A few reads drive the periodic sweep past the restart.
	for k := uint64(4); k < 12; k++ {
		if _, err := do(server.Request{Kind: server.OpGet, Key: k, Size: 2048}); err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
	}

	st := cl.ClusterStats()
	if kills, _ := countEvents(el, obs.EventKill); kills != 1 {
		t.Errorf("journal has %d kill events, want 1", kills)
	}
	if restarts, _ := countEvents(el, obs.EventRestart); restarts != 1 {
		t.Errorf("journal has %d restart events, want 1", restarts)
	}
	if sheds, _ := countEvents(el, obs.EventReplicaShed); int64(sheds) != st.ReplicaSheds {
		t.Errorf("journal has %d replica-shed events, cluster counted %d", sheds, st.ReplicaSheds)
	}
	if _, healed := countEvents(el, obs.EventHeal); int64(healed) != st.HealedKeys {
		t.Errorf("journal heals cover %d keys, cluster counted %d", healed, st.HealedKeys)
	}
	if st.HealedKeys == 0 {
		t.Error("no keys healed — the scenario never degraded replication")
	}
	if cordons, _ := countEvents(el, obs.EventCordon); int64(cordons) != st.Rebalances {
		t.Errorf("journal has %d cordon events, cluster counted %d rebalances", cordons, st.Rebalances)
	}
	if _, migrated := countEvents(el, obs.EventMigrate); int64(migrated) != st.MigratedKeys {
		t.Errorf("journal migrations cover %d keys, cluster counted %d", migrated, st.MigratedKeys)
	}
	// A tombstone is created only when a delete misses a holder, so the
	// count is which of the four deleted keys the dead node held — but
	// after the restart's purge every pending delete must have resolved.
	created, _ := countEvents(el, obs.EventTombstoneCreate)
	resolved, _ := countEvents(el, obs.EventTombstoneResolve)
	if created == 0 {
		t.Error("no tombstones created — no delete-while-down missed a holder")
	}
	if created != resolved {
		t.Errorf("journal has %d tombstone-create but %d tombstone-resolve events; restart left deletes pending", created, resolved)
	}
	if el.Dropped() != 0 {
		t.Errorf("journal dropped %d events at default capacity", el.Dropped())
	}
}

// TestFleetRollup pins the rollup's pure-function contract: FleetSnapshot
// → FleetFromSnapshot must discover every node, carry its up/cordoned
// state and health report, and aggregate the directory gauges — the same
// path /debug/fleet and `ssmtrace fleet` share.
func TestFleetRollup(t *testing.T) {
	cl, _, _, _ := newObservedCluster(t, 3, cluster.Config{Replicas: 1})
	sess, err := cl.OpenSession("t")
	if err != nil {
		t.Fatal(err)
	}
	at := cl.Now()
	for k := uint64(0); k < 12; k++ {
		at = at.Add(50 * sim.Millisecond)
		if _, err := sess.Do(server.Request{Kind: server.OpPut, Key: k, Data: payloadFor(k, 1), Arrival: at}); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	cl.KillNode(2)
	// Writes skip the dead holder → under-replicated entries the gauges
	// must expose.
	for k := uint64(0); k < 12; k++ {
		at = at.Add(50 * sim.Millisecond)
		if _, err := sess.Do(server.Request{Kind: server.OpPut, Key: k, Data: payloadFor(k, 2), Arrival: at}); err != nil {
			t.Fatalf("put %d while down: %v", k, err)
		}
	}

	rep, err := cluster.FleetFromSnapshot(cl.FleetSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Nodes) != 3 {
		t.Fatalf("rollup found %d nodes, want 3", len(rep.Nodes))
	}
	var share float64
	for _, n := range rep.Nodes {
		share += n.RingSharePct
		if n.Name == "n2" {
			if n.Up {
				t.Error("killed node reported up")
			}
		} else {
			if !n.Up {
				t.Errorf("node %s reported down", n.Name)
			}
			if n.Health == nil {
				t.Errorf("node %s has no health report", n.Name)
			} else if n.Health.Blocks == 0 {
				t.Errorf("node %s health report saw no flash geometry", n.Name)
			}
		}
	}
	if share < 99 || share > 101 {
		t.Errorf("ring shares sum to %.2f%%, want ~100%%", share)
	}
	if rep.UnderReplicatedKeys == 0 {
		t.Error("rollup shows no under-replicated keys with a holder down")
	}
	if len(rep.Replicas) != 2 {
		t.Errorf("rollup has %d replica-rank rows, want 2 (primary + one replica)", len(rep.Replicas))
	}

	var buf strings.Builder
	rep.Fprint(&buf)
	for _, want := range []string{"fleet: 3 nodes", "n0", "n2", "under-replicated"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered rollup missing %q:\n%s", want, buf.String())
		}
	}
}

// TestAdminEndpointsServeFleetTelemetry is the endpoint regression test:
// a 2-node cluster wired exactly as ssmserve wires it, scraped over
// HTTP. /metrics must carry node-labelled per-node series and the
// cluster-layer series; /debug/fleet must decode to a FleetReport with
// both nodes up; /debug/events must replay through obs.LoadEvents.
func TestAdminEndpointsServeFleetTelemetry(t *testing.T) {
	cl, base, nodes, privs := newObservedCluster(t, 2, cluster.Config{})
	sess, err := cl.OpenSession("t")
	if err != nil {
		t.Fatal(err)
	}
	at := cl.Now()
	for k := uint64(0); k < 8; k++ {
		at = at.Add(50 * sim.Millisecond)
		if _, err := sess.Do(server.Request{Kind: server.OpPut, Key: k, Data: payloadFor(k, 1), Arrival: at}); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}

	// Wire the admin exactly as ssmserve's cluster mode does: the scraped
	// observer is node 0's private one, sharing the cluster's journal, and
	// the snapshot source is the fleet merge.
	privs[0].SetEventLog(base.EventLog())
	admin := server.NewAdmin(nodes[0].Srv, privs[0])
	admin.SetSnapshotSource(cl.FleetSnapshot)
	admin.SetFleet(func() (any, error) { return cluster.FleetFromSnapshot(cl.FleetSnapshot()) })
	ts := httptest.NewServer(admin.Handler())
	defer ts.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		`node="n0"`, `node="n1"`, // per-node series survived the merge
		"serve_replica_latency", "cluster_node_up", "cluster_ring_share_ppm",
		"cluster_under_replicated_keys",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	var rep cluster.FleetReport
	if err := json.Unmarshal([]byte(get("/debug/fleet")), &rep); err != nil {
		t.Fatalf("/debug/fleet: %v", err)
	}
	if len(rep.Nodes) != 2 || !rep.Nodes[0].Up || !rep.Nodes[1].Up {
		t.Errorf("/debug/fleet: want 2 nodes up, got %+v", rep.Nodes)
	}

	events, _, err := obs.LoadEvents(strings.NewReader(get("/debug/events")))
	if err != nil {
		t.Fatalf("/debug/events: %v", err)
	}
	_ = events // an empty journal is valid — the parse is the contract
}
