// End-to-end cluster tests over real node stacks (assembled through
// core, which is why these live in the external test package): the
// determinism contract for the cluster experiment, and replica
// consistency across a node kill/restart — the synced data a card holds
// must survive its node's power cut via the copies on its peers.
package cluster_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"ssmobile/internal/cluster"
	"ssmobile/internal/core"
	"ssmobile/internal/server"
	"ssmobile/internal/sim"
)

// newTestCluster assembles n fresh (unaged) node stacks behind a router.
func newTestCluster(t *testing.T, n int, cfg cluster.Config) *cluster.Cluster {
	t.Helper()
	nodes := make([]*cluster.Node, n)
	for i := range nodes {
		node, _, err := core.NewClusterNode(core.ClusterNodeConfig{
			Name: fmt.Sprintf("n%d", i),
			System: core.SolidStateConfig{
				DRAMBytes:       8 << 20,
				FlashBytes:      8 << 20,
				BufferBytes:     1 << 20,
				RBoxBytes:       512 << 10,
				IdleCleanBlocks: 24,
				WriteBackDelay:  2 * sim.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	cl, err := cluster.New(nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func payloadFor(key uint64, version byte) []byte {
	p := make([]byte, 2048)
	for i := range p {
		p[i] = byte(key)*7 + version + byte(i)
	}
	return p
}

// TestReplicaConsistencyAcrossKillRestart is the cluster's durability
// contract end to end: synced writes survive a node's power cut through
// the replicas on its peers; reads fail over while the node is down;
// writes made in its absence never resurface stale from its recovered
// card; and the restart heal sweep returns every key to the target copy
// count.
func TestReplicaConsistencyAcrossKillRestart(t *testing.T) {
	cl := newTestCluster(t, 3, cluster.Config{Replicas: 1})
	sess, err := cl.OpenSession("t")
	if err != nil {
		t.Fatal(err)
	}
	at := cl.Now()
	do := func(req server.Request) (server.Response, error) {
		at = at.Add(50 * sim.Millisecond)
		req.Arrival = at
		return sess.Do(req)
	}

	const keys = 24
	for k := uint64(0); k < keys; k++ {
		if _, err := do(server.Request{Kind: server.OpPut, Key: k, Data: payloadFor(k, 1)}); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	// Make it all stable everywhere it lives: the power-failure contract
	// only covers synced data.
	if _, err := do(server.Request{Kind: server.OpSync}); err != nil {
		t.Fatalf("sync: %v", err)
	}

	checkAll := func(stage string, version func(k uint64) byte) {
		t.Helper()
		for k := uint64(0); k < keys; k++ {
			resp, err := do(server.Request{Kind: server.OpGet, Key: k, Size: 2048})
			if err != nil {
				t.Fatalf("%s: get %d: %v", stage, k, err)
			}
			if want := payloadFor(k, version(k)); !bytes.Equal(resp.Data, want) {
				t.Fatalf("%s: key %d payload mismatch", stage, k)
			}
		}
	}
	checkAll("before kill", func(uint64) byte { return 1 })

	// Kill a node mid-workload: every key it held must stay readable via
	// its replica on a surviving node.
	cl.KillNode(0)
	checkAll("node 0 down", func(uint64) byte { return 1 })
	if fo := cl.ClusterStats().ReadFailovers; fo == 0 {
		t.Error("no read failovers with a node down — replicas were never exercised")
	}

	// Update half the keys while the node is away. Its recovered card
	// must never serve these keys' old bytes.
	for k := uint64(0); k < keys; k += 2 {
		if _, err := do(server.Request{Kind: server.OpPut, Key: k, Data: payloadFor(k, 2)}); err != nil {
			t.Fatalf("put %d while node down: %v", k, err)
		}
	}
	if _, err := do(server.Request{Kind: server.OpSync}); err != nil {
		t.Fatalf("sync while node down: %v", err)
	}
	version := func(k uint64) byte {
		if k%2 == 0 {
			return 2
		}
		return 1
	}
	checkAll("updated while down", version)

	// Restart: the node remounts from flash (synced data survives, its
	// DRAM is lost) and the heal sweep re-replicates what it missed.
	if err := cl.RestartNode(0); err != nil {
		t.Fatal(err)
	}
	if cl.NodeDown(0) {
		t.Fatal("node still marked down after restart")
	}
	checkAll("after restart", version)
	if healed := cl.ClusterStats().HealedKeys; healed == 0 {
		t.Error("restart healed no keys — under-replicated entries were left degraded")
	}
	// And the cluster must still take writes everywhere, including on the
	// recovered node.
	for k := uint64(0); k < keys; k++ {
		if _, err := do(server.Request{Kind: server.OpPut, Key: k, Data: payloadFor(k, 3)}); err != nil {
			t.Fatalf("put %d after restart: %v", k, err)
		}
	}
	checkAll("rewritten after restart", func(uint64) byte { return 3 })
}

// TestDeleteWhileHolderDownIsNotResurrected pins the tombstone fix: a
// delete that lands while one of the key's holders is down must stick
// after that node comes back. Pre-fix, the delete dropped the directory
// entry outright, holdersFor fell back to ring placement, and a read
// could be routed to the recovered node — which still held the synced
// pre-delete object — serving a deleted key as a successful read.
func TestDeleteWhileHolderDownIsNotResurrected(t *testing.T) {
	cl := newTestCluster(t, 3, cluster.Config{Replicas: 1})
	sess, err := cl.OpenSession("t")
	if err != nil {
		t.Fatal(err)
	}
	at := cl.Now()
	do := func(req server.Request) (server.Response, error) {
		at = at.Add(50 * sim.Millisecond)
		req.Arrival = at
		return sess.Do(req)
	}

	const keys = 24
	for k := uint64(0); k < keys; k++ {
		if _, err := do(server.Request{Kind: server.OpPut, Key: k, Data: payloadFor(k, 1)}); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	// Sync so node 0's copies survive its power cut — the resurrection
	// bug needs the stale object to outlive the restart.
	if _, err := do(server.Request{Kind: server.OpSync}); err != nil {
		t.Fatalf("sync: %v", err)
	}

	cl.KillNode(0)
	for k := uint64(0); k < keys; k++ {
		if _, err := do(server.Request{Kind: server.OpDelete, Key: k}); err != nil {
			t.Fatalf("delete %d with node 0 down: %v", k, err)
		}
	}
	checkGone := func(stage string) {
		t.Helper()
		for k := uint64(0); k < keys; k++ {
			_, err := do(server.Request{Kind: server.OpGet, Key: k, Size: 2048})
			if err == nil {
				t.Fatalf("%s: deleted key %d served a successful read", stage, k)
			}
			if !errors.Is(err, server.ErrNotFound) {
				t.Fatalf("%s: get %d: %v, want ErrNotFound", stage, k, err)
			}
		}
	}
	checkGone("node 0 down")

	// The recovered node remounts its pre-delete flash image; the heal
	// sweep must propagate the deletes it missed before any read can
	// reach it.
	if err := cl.RestartNode(0); err != nil {
		t.Fatal(err)
	}
	checkGone("after restart")

	// The keys stay fully usable after the tombstones clear.
	for k := uint64(0); k < keys; k++ {
		if _, err := do(server.Request{Kind: server.OpPut, Key: k, Data: payloadFor(k, 2)}); err != nil {
			t.Fatalf("re-put %d: %v", k, err)
		}
		resp, err := do(server.Request{Kind: server.OpGet, Key: k, Size: 2048})
		if err != nil {
			t.Fatalf("get re-put %d: %v", k, err)
		}
		if !bytes.Equal(resp.Data, payloadFor(k, 2)) {
			t.Fatalf("re-put key %d payload mismatch", k)
		}
	}
}

// TestUnderReplicatedKeysHealWithoutRestart pins the periodic heal: a
// key whose holder set shrank because a write skipped a down node must
// be re-replicated onto a healthy third node by the router's health
// sweep — not only when the absent node eventually restarts. Pre-fix,
// the heal ran solely from RestartNode, so durability silently degraded
// for as long as the node stayed away.
func TestUnderReplicatedKeysHealWithoutRestart(t *testing.T) {
	cl := newTestCluster(t, 3, cluster.Config{Replicas: 1, RebalanceCheckEvery: 4})
	sess, err := cl.OpenSession("t")
	if err != nil {
		t.Fatal(err)
	}
	at := cl.Now()
	do := func(req server.Request) (server.Response, error) {
		at = at.Add(50 * sim.Millisecond)
		req.Arrival = at
		return sess.Do(req)
	}

	const keys = 24
	for k := uint64(0); k < keys; k++ {
		if _, err := do(server.Request{Kind: server.OpPut, Key: k, Data: payloadFor(k, 1)}); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	cl.KillNode(0)
	// Rewrites while node 0 is away pin keys it held to their single
	// surviving holder.
	for k := uint64(0); k < keys; k++ {
		if _, err := do(server.Request{Kind: server.OpPut, Key: k, Data: payloadFor(k, 2)}); err != nil {
			t.Fatalf("put %d with node 0 down: %v", k, err)
		}
	}
	// Drive the periodic sweep past the last rewrite so every degraded
	// key gets its heal pass (no restart anywhere).
	for i := 0; i < 8; i++ {
		if _, err := do(server.Request{Kind: server.OpGet, Key: uint64(i), Size: 2048}); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if healed := cl.ClusterStats().HealedKeys; healed == 0 {
		t.Fatal("health sweep healed no keys while the node was away — under-replication persists until a restart")
	}

	// The proof of durability: lose a second node. Every key must still
	// be readable from the copies the sweep restored.
	cl.KillNode(1)
	for k := uint64(0); k < keys; k++ {
		resp, err := do(server.Request{Kind: server.OpGet, Key: k, Size: 2048})
		if err != nil {
			t.Fatalf("get %d with nodes 0 and 1 down: %v", k, err)
		}
		if !bytes.Equal(resp.Data, payloadFor(k, 2)) {
			t.Fatalf("key %d payload mismatch after double failure", k)
		}
	}
}

// TestKillWithoutReplicasLosesAvailability pins the negative space: with
// replication off, killing a node makes its keys unavailable rather than
// silently wrong.
func TestKillWithoutReplicasLosesAvailability(t *testing.T) {
	// Replicas is clamped to nodes-1, so a 1-node "cluster" has none.
	cl := newTestCluster(t, 1, cluster.Config{})
	sess, err := cl.OpenSession("t")
	if err != nil {
		t.Fatal(err)
	}
	at := cl.Now().Add(50 * sim.Millisecond)
	if _, err := sess.Do(server.Request{Kind: server.OpPut, Key: 1, Data: []byte("x"), Arrival: at}); err != nil {
		t.Fatal(err)
	}
	cl.KillNode(0)
	_, err = sess.Do(server.Request{Kind: server.OpGet, Key: 1, Size: 1, Arrival: at.Add(sim.Second)})
	if err == nil {
		t.Fatal("read from a dead single-node cluster succeeded")
	}
}

// TestE14DeterministicAcrossParallelism is the experiment-level
// determinism contract: the cluster table is a pure function of the
// seed, byte-identical whether its cells run sequentially or on a
// worker pool.
func TestE14DeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the cluster experiment twice")
	}
	var serial, parallel strings.Builder
	if err := core.RunExperimentParallel(&serial, "e14", 1993, 1); err != nil {
		t.Fatalf("serial: %v", err)
	}
	if err := core.RunExperimentParallel(&parallel, "e14", 1993, 8); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if serial.String() != parallel.String() {
		t.Error("E14 output differs between -parallel 1 and 8")
	}
	if !strings.Contains(serial.String(), "E14") {
		t.Error("E14 table missing from output")
	}
}

// TestE16DeterministicAcrossParallelism extends the contract to the
// fleet-observability experiment: the event journal's timeline, the
// per-holder latency decomposition, and the fleet rollup are all pure
// functions of the seed at any -parallel level.
func TestE16DeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fleet experiment twice")
	}
	var serial, parallel strings.Builder
	if err := core.RunExperimentParallel(&serial, "e16", 1993, 1); err != nil {
		t.Fatalf("serial: %v", err)
	}
	if err := core.RunExperimentParallel(&parallel, "e16", 1993, 8); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if serial.String() != parallel.String() {
		t.Error("E16 output differs between -parallel 1 and 8")
	}
	for _, want := range []string{"E16b", "E16c", "E16d", "kill", "restart"} {
		if !strings.Contains(serial.String(), want) {
			t.Errorf("E16 output missing %q", want)
		}
	}
}
