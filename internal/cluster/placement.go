// Placement: a consistent-hash ring with a directory of per-key
// overrides layered on top.
//
// The ring answers "where does a key live by default": each node
// projects VirtualPoints points onto a 64-bit circle, and a key's
// primary is the first point clockwise of its hash, with replicas on
// the next distinct nodes. Virtual points keep the load split even when
// node counts are small, and adding a node moves only the keys whose
// arc it captures — the property that makes scale-out cheap.
//
// The directory overrides the ring for keys that have been written (so
// a later rebalance can move them without rehashing the world) and for
// keys migrated off an aging node. Ring placement is the default;
// directory entries pin the truth.
package cluster

import (
	"fmt"
	"sort"
)

// fnv64a hashes bytes with FNV-1a; placement must be a pure function of
// (tenant, key, node names), never of map order or pointer values.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// avalanche is the 64-bit mix finalizer (splitmix64's): FNV-1a over the
// short, low-entropy inputs placement hashes (small integer keys, "c7")
// barely diffuses into the high bits, and the ring successor search is
// decided almost entirely by high bits — without this, sequential keys
// land in periodic arcs and some nodes get no primaries at all.
func avalanche(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func hashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return avalanche(h)
}

func hashKey(tenant string, key uint64) uint64 {
	h := hashString(tenant)
	h ^= '#'
	h *= fnvPrime
	for i := 0; i < 8; i++ {
		h ^= (key >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return avalanche(h)
}

// ringPoint is one virtual point on the hash circle.
type ringPoint struct {
	hash uint64
	node int
}

// buildRing projects every node onto the circle. Points are sorted by
// hash with node index breaking ties, so the ring is a pure function of
// the node names.
func buildRing(names []string, virtualPoints int) []ringPoint {
	ring := make([]ringPoint, 0, len(names)*virtualPoints)
	for i, name := range names {
		for v := 0; v < virtualPoints; v++ {
			ring = append(ring, ringPoint{hash: hashString(fmt.Sprintf("%s|%d", name, v)), node: i})
		}
	}
	sort.Slice(ring, func(a, b int) bool {
		if ring[a].hash != ring[b].hash {
			return ring[a].hash < ring[b].hash
		}
		return ring[a].node < ring[b].node
	})
	return ring
}

// walkRing visits distinct nodes clockwise from the key's hash point,
// calling visit for each until it returns false or every node has been
// seen once.
func (c *Cluster) walkRing(tenant string, key uint64, visit func(node int) bool) {
	if len(c.ring) == 0 {
		return
	}
	h := hashKey(tenant, key)
	start := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	seen := make([]bool, len(c.nodes))
	distinct := 0
	for i := 0; i < len(c.ring) && distinct < len(c.nodes); i++ {
		p := c.ring[(start+i)%len(c.ring)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		distinct++
		if !visit(p.node) {
			return
		}
	}
}

// ringPlace computes the default holder set for a key: primary plus
// cfg.Replicas distinct replicas, preferring nodes that are neither
// down nor cordoned. If the healthy pool is too small the walk relaxes
// to cordoned (then down) nodes rather than returning nothing — a
// degraded placement beats an unplaceable key.
func (c *Cluster) ringPlace(tenant string, key uint64) []int {
	want := c.cfg.Replicas + 1
	holders := make([]int, 0, want)
	taken := make([]bool, len(c.nodes))
	pass := func(ok func(node int) bool) {
		c.walkRing(tenant, key, func(n int) bool {
			if len(holders) >= want {
				return false
			}
			if !taken[n] && ok(n) {
				taken[n] = true
				holders = append(holders, n)
			}
			return true
		})
	}
	pass(func(n int) bool { return !c.down[n] && !c.cordoned[n] })
	if len(holders) < want {
		pass(func(n int) bool { return !c.down[n] })
	}
	if len(holders) < want {
		pass(func(n int) bool { return true })
	}
	return holders
}

// ringReplacement picks the first node clockwise of the key that is
// healthy and not already a holder, or -1 when no such node exists.
func (c *Cluster) ringReplacement(tenant string, key uint64, holders []int) int {
	repl := -1
	c.walkRing(tenant, key, func(n int) bool {
		if c.down[n] || c.cordoned[n] {
			return true
		}
		for _, h := range holders {
			if h == n {
				return true
			}
		}
		repl = n
		return false
	})
	return repl
}
