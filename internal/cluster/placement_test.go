package cluster

import "testing"

// testCluster builds a bare router shell — ring and health flags only —
// for exercising placement without node stacks.
func testCluster(names []string, replicas int) *Cluster {
	cfg := Config{Replicas: replicas}.withDefaults(len(names))
	return &Cluster{
		cfg:      cfg,
		nodes:    make([]*Node, len(names)),
		down:     make([]bool, len(names)),
		cordoned: make([]bool, len(names)),
		ring:     buildRing(names, cfg.VirtualPoints),
	}
}

// Placement must be a pure function of (tenant, key, node names): two
// rings built from the same names agree point for point.
func TestRingIsDeterministic(t *testing.T) {
	names := []string{"n0", "n1", "n2", "n3"}
	a, b := buildRing(names, 16), buildRing(names, 16)
	if len(a) != len(b) || len(a) != len(names)*16 {
		t.Fatalf("ring sizes: %d vs %d, want %d", len(a), len(b), len(names)*16)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ring diverges at point %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// ringPlace returns primary + replicas on distinct nodes, and every node
// gets a reasonable share of primaries (virtual points spread the load).
func TestRingPlaceDistinctAndSpread(t *testing.T) {
	c := testCluster([]string{"n0", "n1", "n2", "n3"}, 1)
	primaries := make([]int, 4)
	for key := uint64(0); key < 400; key++ {
		h := c.ringPlace("tenant", key)
		if len(h) != 2 {
			t.Fatalf("key %d: %d holders, want 2", key, len(h))
		}
		if h[0] == h[1] {
			t.Fatalf("key %d: duplicate holder %d", key, h[0])
		}
		primaries[h[0]]++
	}
	for n, got := range primaries {
		if got == 0 {
			t.Errorf("node %d owns no primaries — ring badly skewed: %v", n, primaries)
		}
	}
}

// A down or cordoned node must not receive new placements while any
// healthy node can take them; with nothing healthy left the walk relaxes
// rather than leaving the key unplaceable.
func TestRingPlaceAvoidsUnhealthy(t *testing.T) {
	c := testCluster([]string{"n0", "n1", "n2"}, 1)
	c.down[0] = true
	c.cordoned[1] = true
	for key := uint64(0); key < 50; key++ {
		h := c.ringPlace("t", key)
		if h[0] != 2 {
			t.Fatalf("key %d: primary %d, want the only healthy node 2", key, h[0])
		}
		// The replica slot has no healthy candidate left; it should relax
		// to the cordoned node before the down one.
		if len(h) > 1 && h[1] != 1 {
			t.Fatalf("key %d: replica %d, want cordoned node 1 over down node 0", key, h[1])
		}
	}
}

// ringReplacement skips holders and unhealthy nodes.
func TestRingReplacement(t *testing.T) {
	c := testCluster([]string{"n0", "n1", "n2", "n3"}, 1)
	for key := uint64(0); key < 50; key++ {
		holders := c.ringPlace("t", key)
		repl := c.ringReplacement("t", key, holders)
		if repl < 0 {
			t.Fatalf("key %d: no replacement in a healthy 4-node ring", key)
		}
		for _, h := range holders {
			if repl == h {
				t.Fatalf("key %d: replacement %d is already a holder", key, repl)
			}
		}
	}
	// With every non-holder unhealthy there is nowhere to go.
	c.down[2], c.cordoned[3] = true, true
	for key := uint64(0); key < 50; key++ {
		holders := []int{0, 1}
		if repl := c.ringReplacement("t", key, holders); repl >= 0 {
			t.Fatalf("key %d: replacement %d from an all-unhealthy pool", key, repl)
		}
	}
}
