// Fleet health rollup: one report for the whole cluster, aggregated
// from the same per-node SMART telemetry the rebalancer reads.
//
// The shape mirrors flash.HealthFromSnapshot one level up: everything is
// a pure function of a single merged obs.Snapshot in which each node's
// series carry a node label (FleetSnapshot builds it; ssmserve's
// telemetry merge produces the same shape). The live admin surface
// (/debug/fleet) and the offline `ssmtrace fleet` both call
// FleetFromSnapshot over such a snapshot, so the fleet view an operator
// scrapes is exactly reconstructible from a metrics dump.
package cluster

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
)

// refreshFleetGauges recomputes the directory-degradation and per-node
// state gauges from the router's own state. Plain Set gauges, written
// here and read wherever the registry is snapshotted — never
// read-through, so a flight-recorder dump taken inside checkHealth
// cannot re-enter the cluster mutex. Caller holds c.mu.
func (c *Cluster) refreshFleetGauges() {
	var under, tomb, stale int64
	want := c.cfg.Replicas + 1
	for _, m := range c.dir {
		for _, e := range m {
			if e.deleted {
				tomb++
			} else if len(e.holders) < want {
				under++
			}
			stale += int64(len(e.stale))
		}
	}
	c.underRepl.Set(under)
	c.tombKeys.Set(tomb)
	c.staleCopies.Set(stale)
	for i := range c.nodes {
		var up, cord int64
		if !c.down[i] {
			up = 1
		}
		if c.cordoned[i] {
			cord = 1
		}
		c.nodeUp[i].Set(up)
		c.nodeCordoned[i].Set(cord)
	}
}

// FleetSnapshot captures the merged fleet view: the router's own
// registry (fleet gauges freshly recomputed, replica-latency summaries)
// plus every node's registry with a node label stamped onto its series,
// all sorted into one snapshot. This is the input FleetFromSnapshot
// wants, and what ssmserve serves at /metrics in cluster mode.
func (c *Cluster) FleetSnapshot() obs.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refreshFleetGauges()
	var snap obs.Snapshot
	if c.obs != nil && c.obs.Registry != nil {
		snap = c.obs.Registry.Snapshot()
	}
	for _, n := range c.nodes {
		if n.Obs == nil || n.Obs.Registry == nil {
			continue
		}
		node := n.Obs.Registry.Snapshot().WithLabel("node", n.Name)
		snap.Metrics = append(snap.Metrics, node.Metrics...)
	}
	sort.Slice(snap.Metrics, func(i, j int) bool {
		return snap.Metrics[i].Key() < snap.Metrics[j].Key()
	})
	return snap
}

// FleetNode is one node's row in the fleet report.
type FleetNode struct {
	Name         string  `json:"name"`
	Up           bool    `json:"up"`
	Cordoned     bool    `json:"cordoned"`
	RingSharePct float64 `json:"ring_share_pct"`
	// Health is the node's own SMART report (nil when the snapshot has no
	// wear telemetry for the node — e.g. a node that never registered).
	Health *flash.HealthReport `json:"health,omitempty"`
}

// FleetReplicaRank is one rank's holder-latency summary from the
// router's serve_replica_latency histograms.
type FleetReplicaRank struct {
	Rank  int     `json:"rank"`
	Role  string  `json:"role"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ns"`
	P99   float64 `json:"p99_ns"`
}

// FleetReport is the cluster-wide health summary served at /debug/fleet
// and printed by `ssmtrace fleet`. Field order is the JSON layout; keep
// it stable.
type FleetReport struct {
	Nodes []FleetNode `json:"nodes"`

	// Endurance rollup: the fleet's remaining erase budget against its
	// combined burn rate — the scale-out version of a single card's
	// lifetime-at-rate.
	RemainingEraseBudget int64   `json:"remaining_erase_budget"`
	EraseRatePerSec      float64 `json:"erase_rate_per_sec"`
	LifetimeSeconds      float64 `json:"lifetime_seconds_at_current_rate"`
	Lifetime             string  `json:"lifetime_at_current_rate"`

	// Wear spread across cards (max − min of the nodes' mean erase
	// counts): the imbalance a cluster-level leveling policy — migration
	// off hot cards — could still reclaim.
	MaxLifeUsedPct        float64 `json:"max_life_used_pct"`
	MinLifeUsedPct        float64 `json:"min_life_used_pct"`
	WearSpreadAcrossCards float64 `json:"wear_spread_across_cards"`

	// Directory degradation, from the router's fleet gauges.
	UnderReplicatedKeys int64 `json:"under_replicated_keys"`
	TombstoneKeys       int64 `json:"tombstone_keys"`
	StaleCopies         int64 `json:"stale_copies"`

	// Fan-out latency decomposition, from the router's per-rank
	// histograms; StragglerNS is the last replicated write's
	// slowest-minus-median holder gap.
	Replicas    []FleetReplicaRank `json:"replicas,omitempty"`
	StragglerNS int64              `json:"straggler_ns"`
}

// FleetFromSnapshot computes the fleet report from a merged snapshot in
// which per-node series carry a node label (FleetSnapshot's shape). It
// fails if the snapshot has no cluster-tier series at all.
func FleetFromSnapshot(snap obs.Snapshot) (FleetReport, error) {
	cl := obs.Labels{"layer": "cluster"}
	var rep FleetReport

	// Node discovery: every cluster_node_up series names one node. The
	// router registers these unconditionally, so an empty set means the
	// snapshot is not a fleet snapshot.
	type nodeState struct{ up, cordoned, sharePPM float64 }
	states := make(map[string]*nodeState)
	var names []string
	for _, m := range snap.Metrics {
		if m.Labels["layer"] != "cluster" {
			continue
		}
		name := m.Labels["node"]
		if name == "" {
			continue
		}
		st := states[name]
		if st == nil {
			st = &nodeState{}
			states[name] = st
			names = append(names, name)
		}
		switch m.Name {
		case "cluster_node_up":
			st.up = m.Value
		case "cluster_node_cordoned":
			st.cordoned = m.Value
		case "cluster_ring_share_ppm":
			st.sharePPM = m.Value
		}
	}
	if len(names) == 0 {
		return rep, fmt.Errorf("cluster: snapshot has no cluster_node_up series (not a fleet snapshot)")
	}
	sort.Strings(names)

	first := true
	for _, name := range names {
		st := states[name]
		fn := FleetNode{
			Name:         name,
			Up:           st.up > 0,
			Cordoned:     st.cordoned > 0,
			RingSharePct: st.sharePPM / 1e4,
		}
		if h, err := flash.HealthFromSnapshot(snap.FilterLabel("node", name), "flash"); err == nil {
			hc := h
			fn.Health = &hc
			rep.RemainingEraseBudget += h.RemainingEraseBudget
			rep.EraseRatePerSec += h.EraseRatePerSec
			if first || h.LifeUsedPct > rep.MaxLifeUsedPct {
				rep.MaxLifeUsedPct = h.LifeUsedPct
			}
			if first || h.LifeUsedPct < rep.MinLifeUsedPct {
				rep.MinLifeUsedPct = h.LifeUsedPct
			}
			if first {
				rep.WearSpreadAcrossCards = 0
			}
			first = false
		}
		rep.Nodes = append(rep.Nodes, fn)
	}
	// Wear spread across cards: max − min of the nodes' mean erase counts.
	var minMean, maxMean float64
	seen := false
	for _, fn := range rep.Nodes {
		if fn.Health == nil {
			continue
		}
		m := fn.Health.MeanEraseCount
		if !seen || m < minMean {
			minMean = m
		}
		if !seen || m > maxMean {
			maxMean = m
		}
		seen = true
	}
	if seen {
		rep.WearSpreadAcrossCards = maxMean - minMean
	}
	if rep.EraseRatePerSec > 0 {
		rep.LifetimeSeconds = float64(rep.RemainingEraseBudget) / rep.EraseRatePerSec
	}
	rep.Lifetime = fleetLifetime(rep.LifetimeSeconds)

	if m, ok := snap.Find("cluster_under_replicated_keys", cl); ok {
		rep.UnderReplicatedKeys = int64(m.Value)
	}
	if m, ok := snap.Find("cluster_tombstone_keys", cl); ok {
		rep.TombstoneKeys = int64(m.Value)
	}
	if m, ok := snap.Find("cluster_stale_copies", cl); ok {
		rep.StaleCopies = int64(m.Value)
	}
	if m, ok := snap.Find("serve_replica_straggler_ns", cl); ok {
		rep.StragglerNS = int64(m.Value)
	}
	for _, m := range snap.Metrics {
		if m.Name != "serve_replica_latency" || m.Labels["layer"] != "cluster" {
			continue
		}
		rank, err := strconv.Atoi(m.Labels["rank"])
		if err != nil {
			continue
		}
		rep.Replicas = append(rep.Replicas, FleetReplicaRank{
			Rank:  rank,
			Role:  m.Labels["role"],
			Count: m.Count,
			P50:   m.P50,
			P99:   m.P99,
		})
	}
	sort.Slice(rep.Replicas, func(i, j int) bool { return rep.Replicas[i].Rank < rep.Replicas[j].Rank })
	return rep, nil
}

// fleetLifetime mirrors the single-card lifetime formatting so the two
// reports read alike.
func fleetLifetime(s float64) string {
	const day = 86400.0
	switch {
	case s <= 0:
		return "unbounded"
	case s >= 365.25*day:
		return fmt.Sprintf("%.1fy", s/(365.25*day))
	case s >= day:
		return fmt.Sprintf("%.1fd", s/day)
	case s >= 3600:
		return fmt.Sprintf("%.1fh", s/3600)
	default:
		return fmt.Sprintf("%.0fs", s)
	}
}

// Fprint renders the report as the human-readable `ssmtrace fleet` text.
func (r FleetReport) Fprint(w io.Writer) {
	up, cordoned := 0, 0
	for _, n := range r.Nodes {
		if n.Up {
			up++
		}
		if n.Cordoned {
			cordoned++
		}
	}
	fmt.Fprintf(w, "fleet: %d nodes (%d up, %d cordoned)\n", len(r.Nodes), up, cordoned)
	fmt.Fprintf(w, "  %-8s %-5s %-8s %7s %10s %10s %8s %10s\n",
		"node", "up", "cordon", "share%", "life-used%", "mean-wear", "margin%", "lifetime")
	for _, n := range r.Nodes {
		upS, cordS := "up", "-"
		if !n.Up {
			upS = "down"
		}
		if n.Cordoned {
			cordS = "cordoned"
		}
		if n.Health == nil {
			fmt.Fprintf(w, "  %-8s %-5s %-8s %7.2f %10s %10s %8s %10s\n",
				n.Name, upS, cordS, n.RingSharePct, "-", "-", "-", "-")
			continue
		}
		h := n.Health
		margin := "-"
		if h.FreeBlockMargin >= 0 {
			margin = fmt.Sprintf("%.1f", 100*h.FreeBlockMargin)
		}
		fmt.Fprintf(w, "  %-8s %-5s %-8s %7.2f %10.3f %10.2f %8s %10s\n",
			n.Name, upS, cordS, n.RingSharePct, h.LifeUsedPct, h.MeanEraseCount, margin, h.Lifetime)
	}
	fmt.Fprintf(w, "  fleet lifetime at rate %s (%.4f erases/s against budget %d)\n",
		r.Lifetime, r.EraseRatePerSec, r.RemainingEraseBudget)
	fmt.Fprintf(w, "  life used across cards %.3f%%..%.3f%%, wear spread %.2f mean-erases\n",
		r.MinLifeUsedPct, r.MaxLifeUsedPct, r.WearSpreadAcrossCards)
	fmt.Fprintf(w, "  directory: %d under-replicated, %d tombstones, %d stale copies\n",
		r.UnderReplicatedKeys, r.TombstoneKeys, r.StaleCopies)
	if len(r.Replicas) > 0 {
		fmt.Fprintf(w, "  replica latency by rank (straggler gap %d ns):\n", r.StragglerNS)
		for _, rr := range r.Replicas {
			fmt.Fprintf(w, "    rank %d (%-7s) n=%-7d p50 %.0f ns  p99 %.0f ns\n",
				rr.Rank, rr.Role, rr.Count, rr.P50, rr.P99)
		}
	}
}
