// Quickstart: assemble the paper's solid-state storage organisation,
// use its memory-resident file system, and watch where data lives and
// what it costs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ssmobile/internal/core"
)

func main() {
	// A small 1993-class mobile computer: 8MB of battery-backed DRAM and
	// a 32MB flash card, with defaults for everything else (4 flash
	// banks, cost-benefit cleaning with hot/cold separation, 30-second
	// write-back).
	sys, err := core.NewSolidState(core.SolidStateConfig{
		DRAMBytes:  8 << 20,
		FlashBytes: 32 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine:", sys.Name())

	// The file system is memory-resident: creates are DRAM-speed.
	must(sys.FS.MkdirAll("/home/ram"))
	must(sys.FS.WriteFile("/home/ram/notes.txt", []byte("flash is the new disk\n")))

	start := sys.Clock().Now()
	data, err := sys.FS.ReadFile("/home/ram/notes.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %q in %v (from DRAM: the file is freshly written)\n",
		string(data), sys.Clock().Now().Sub(start))

	// Force migration to stable storage, then read again — now the read
	// is served in place from flash, still microseconds, no disk seek,
	// no buffer-cache copy.
	must(sys.FS.Sync())
	start = sys.Clock().Now()
	if _, err := sys.FS.ReadFile("/home/ram/notes.txt"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after sync, read again in %v (in place from flash)\n",
		sys.Clock().Now().Sub(start))

	// Write a burst of short-lived temporary files: the battery-backed
	// write buffer absorbs them and they never cost flash writes or wear.
	for i := 0; i < 100; i++ {
		must(sys.FS.WriteFile("/home/ram/tmp", make([]byte, 8192)))
		must(sys.FS.Remove("/home/ram/tmp"))
	}
	ss := sys.Storage.Stats()
	fmt.Printf("\nstorage manager after 100 temp files:\n")
	fmt.Printf("  host wrote:        %d KB\n", ss.HostBytesWritten>>10)
	fmt.Printf("  reached flash:     %d KB (%.0f%% absorbed in DRAM)\n",
		ss.FlushedBytes>>10, ss.Reduction()*100)
	fmt.Printf("  delete-absorbed:   %d KB\n", ss.DeleteAbsorbedBytes>>10)

	fs := sys.Flash.Stats()
	fmt.Printf("\nflash device:\n")
	fmt.Printf("  programs=%d erases=%d max-erase-count=%d wear-CoV=%.2f\n",
		fs.Programs, fs.Erases, fs.MaxEraseCount, fs.EraseCountCoV)
	fmt.Printf("\nvirtual time elapsed: %v, energy drawn: %v\n",
		sys.Clock().Now(), sys.Meter().Total())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
