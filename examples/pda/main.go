// PDA: a personal digital assistant in the mould of the paper's examples
// (Sharp Wizard, Apple Newton, HP OmniBook) — bundled applications
// executed in place from a flash card, an appointment database kept in
// the memory-resident file system, and a demonstration that an OS crash
// loses nothing while a battery death loses only unflushed data.
//
//	go run ./examples/pda
package main

import (
	"fmt"
	"log"

	"ssmobile/internal/core"
	"ssmobile/internal/dram"
	"ssmobile/internal/fs"
	"ssmobile/internal/sim"
	"ssmobile/internal/trace"
	"ssmobile/internal/vm"
)

func main() {
	// A palmtop: 2MB DRAM, 8MB flash.
	sys, err := core.NewSolidState(core.SolidStateConfig{
		DRAMBytes:   2 << 20,
		FlashBytes:  8 << 20,
		BufferBytes: 512 << 10,
		RBoxBytes:   256 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("palmtop:", sys.Name())

	// --- Execute in place: the bundled datebook application ships in
	// flash (as the OmniBook shipped software in memory cards) and runs
	// without being loaded into precious DRAM.
	const appSize = 256 << 10
	app := make([]byte, appSize)
	for i := range app {
		app[i] = byte(i * 31)
	}
	// The installer programs the application image into the read-mostly
	// code card, where the cleaner never touches it.
	if err := sys.InstallImage(0, app); err != nil {
		log.Fatal(err)
	}
	space := sys.VM.NewSpace()
	start := sys.Clock().Now()
	if err := sys.VM.MapFlash(space, 0x400000, 0, appSize, vm.PermRead|vm.PermExec); err != nil {
		log.Fatal(err)
	}
	if err := sys.VM.Exec(space, 0x400000, appSize); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("datebook launched in %v, executing in place (0 DRAM frames used of %d)\n",
		sys.Clock().Now().Sub(start), sys.VM.Stats().FramesTotal)

	// --- The appointment database lives in the file system.
	must(sys.FS.MkdirAll("/pda/datebook"))
	for day := 1; day <= 31; day++ {
		path := fmt.Sprintf("/pda/datebook/jan-%02d", day)
		entry := fmt.Sprintf("09:00 standup\n14:00 design review (day %d)\n", day)
		must(sys.FS.WriteFile(path, []byte(entry)))
	}
	infos, err := sys.FS.ReadDir("/pda/datebook")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("datebook holds %d days\n", len(infos))

	// --- The user pops the batteries without warning... but this is an
	// OS crash equivalent for the in-core FS object only if power holds.
	// First: an OS crash. Battery-backed DRAM keeps everything; the
	// recovery box restores the namespace in microseconds.
	recovered, err := fs.RecoverAfterCrash(fs.Config{RBoxBase: 0, RBoxBytes: 256 << 10},
		sys.Clock(), sys.Storage, sys.DRAM)
	if err != nil {
		log.Fatal(err)
	}
	entry, err := recovered.ReadFile("/pda/datebook/jan-15")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after OS crash: datebook intact (%d inodes), jan-15 reads %q...\n",
		recovered.NumInodes(), string(entry[:13]))

	// --- Now the real thing: checkpoint, keep working, then lose power.
	must(recovered.Sync())
	must(recovered.WriteFile("/pda/datebook/feb-01", []byte("unsaved entry")))
	sys.DRAM.PowerFail()
	after, lost, err := fs.RecoverAfterPowerFailure(fs.Config{RBoxBase: 0, RBoxBytes: 256 << 10},
		sys.Clock(), sys.Storage, sys.DRAM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after battery death: lost %d bytes (the unsaved entry); january survives: %v\n",
		lost, after.Exists("/pda/datebook/jan-15"))
	fmt.Printf("feb-01 survived: %v (written after the last checkpoint)\n",
		after.Exists("/pda/datebook/feb-01"))

	// --- A full day of PIM usage: bursts of tiny record updates with
	// long idle gaps. The write buffer absorbs the in-place rewrites, so
	// the flash card barely wears.
	day, err := trace.GeneratePIM(trace.DefaultPIM(8*sim.Hour, 7))
	if err != nil {
		log.Fatal(err)
	}
	progBefore := sys.Flash.Stats().BytesProgrammed
	smBefore := sys.Storage.Stats().HostBytesWritten
	flushedBefore := sys.Storage.Stats().FlushedBytes
	scratch := make([]byte, 4096)
	base := sys.Clock().Now()
	for _, op := range day.Ops {
		if at := base.Add(sim.Duration(op.Time)); at > sys.Clock().Now() {
			sys.Clock().AdvanceTo(at)
		}
		if err := sys.Tick(); err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("/pda/db/r%d", op.File)
		switch op.Kind {
		case trace.Create:
			must(sys.FS.MkdirAll("/pda/db"))
			must(sys.FS.Create(name))
		case trace.Write:
			if _, err := sys.FS.WriteAt(name, op.Offset, scratch[:op.Size]); err != nil {
				log.Fatal(err)
			}
		case trace.Read:
			if _, err := sys.FS.ReadAt(name, op.Offset, scratch[:op.Size]); err != nil {
				log.Fatal(err)
			}
		}
	}
	ss := sys.Storage.Stats()
	hostKB := (ss.HostBytesWritten - smBefore) >> 10
	flushedKB := (ss.FlushedBytes - flushedBefore) >> 10
	physKB := (sys.Flash.Stats().BytesProgrammed - progBefore) >> 10
	absorbed := 0.0
	if hostKB > 0 {
		absorbed = 100 * (1 - float64(flushedKB)/float64(hostKB))
	}
	fmt.Printf("\na day of datebook use: %d ops, %dKB of record updates,\n", len(day.Ops), hostKB)
	fmt.Printf("  %dKB migrated to flash (%.0f%% absorbed by overwrites in battery-backed DRAM);\n",
		flushedKB, absorbed)
	fmt.Printf("  physical flash programs %dKB — tiny records pay page-granularity\n", physKB)
	fmt.Printf("  amplification, which the DRAM buffer keeps off the foreground path\n")

	// --- Battery outlook while idle in a briefcase.
	idle := sys.DRAM.IdleMilliwatts() + 0.05*8 // DRAM self-refresh + flash standby
	pack := dram.NewPack(2, 0.1)               // 2Wh AA pair + 0.1Wh coin cell
	fmt.Printf("\nidle draw %.2f mW: a 2Wh pack preserves memory for %.0f days\n",
		idle, pack.RetentionAt(idle).Seconds()/86400)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
