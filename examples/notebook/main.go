// Notebook: a day-in-the-life office/engineering session — the workload
// the paper's introduction motivates — run twice, once on the solid-state
// organisation and once on the conventional disk organisation, printing a
// head-to-head comparison of latency and battery draw.
//
//	go run ./examples/notebook [-minutes 30] [-seed 1993]
package main

import (
	"flag"
	"fmt"
	"log"

	"ssmobile/internal/core"
	"ssmobile/internal/sim"
	"ssmobile/internal/trace"
)

func main() {
	minutes := flag.Int("minutes", 30, "session length in virtual minutes")
	seed := flag.Int64("seed", 1993, "workload seed")
	flag.Parse()

	tr, err := trace.GenerateBaker(trace.DefaultBaker(sim.Duration(*minutes)*sim.Minute, *seed))
	if err != nil {
		log.Fatal(err)
	}
	ts := tr.Stats()
	fmt.Printf("session: %d ops over %dmin — %d files, %.0fMB written, %.0fMB read\n\n",
		ts.Ops, *minutes, ts.UniqueFiles,
		float64(ts.BytesWritten)/(1<<20), float64(ts.BytesRead)/(1<<20))

	solid, err := core.NewSolidState(core.SolidStateConfig{
		DRAMBytes: 16 << 20, FlashBytes: 64 << 20, RBoxBytes: 4 << 20, SnapshotEvery: 2048,
	})
	if err != nil {
		log.Fatal(err)
	}
	dsys, err := core.NewDisk(core.DiskConfig{DRAMBytes: 16 << 20, DiskBytes: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}

	type result struct {
		name string
		st   core.ReplayStats
	}
	var results []result
	for _, sys := range []core.System{solid, dsys} {
		st, err := core.Replay(sys, tr)
		if err != nil {
			log.Fatalf("%s: %v", sys.Name(), err)
		}
		if err := sys.Sync(); err != nil {
			log.Fatal(err)
		}
		results = append(results, result{sys.Name(), st})
	}

	fmt.Printf("%-38s %12s %12s %12s %12s\n", "system", "read mean", "read p99", "write mean", "energy")
	for _, r := range results {
		fmt.Printf("%-38s %12v %12v %12v %12v\n",
			r.name,
			sim.Duration(r.st.ReadLatency.Mean()),
			sim.Duration(r.st.ReadLatency.Quantile(0.99)),
			sim.Duration(r.st.WriteLatency.Mean()),
			r.st.EnergyTotal)
	}

	// What the session cost the flash card and the disk.
	fst := solid.Flash.Stats()
	fmt.Printf("\nflash wear this session: max erase count %d of %d guaranteed cycles\n",
		fst.MaxEraseCount, solid.Flash.Config().Params.EnduranceCycles)
	sessionsPerLifetime := "effectively unlimited"
	if fst.MaxEraseCount > 0 {
		sessionsPerLifetime = fmt.Sprintf("~%d sessions",
			solid.Flash.Config().Params.EnduranceCycles/fst.MaxEraseCount)
	}
	fmt.Printf("card lifetime at this rate: %s\n", sessionsPerLifetime)

	dst := dsys.Disk.Stats()
	fmt.Printf("disk this session: %v of seek time, %d spin-ups\n",
		sim.Duration(dst.SeekNs), dst.Spinups)

	// Battery impact: a 10Wh primary pack against each system's draw.
	fmt.Println("\nbattery outlook on a 10Wh pack at this duty cycle:")
	for _, r := range results {
		perHour := r.st.EnergyTotal.Joules() / (float64(*minutes) / 60)
		hours := 10.0 * 3600 / perHour
		fmt.Printf("  %-38s %.0f J/hour -> %.1f hours\n", r.name, perHour, hours)
	}
}
