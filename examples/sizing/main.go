// Sizing: the paper's §4 question as an interactive explorer — given a
// fixed memory budget, how should a mobile computer apportion it between
// battery-backed DRAM and flash? Sweeps the split for a chosen workload
// temperature and prints the tradeoff.
//
//	go run ./examples/sizing [-budget 40] [-hot 1.3] [-minutes 10]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"ssmobile/internal/core"
	"ssmobile/internal/sim"
	"ssmobile/internal/storman"
	"ssmobile/internal/trace"
)

func main() {
	budgetMB := flag.Int64("budget", 40, "total memory budget in MB")
	hot := flag.Float64("hot", 1.3, "write-workload skew (higher = smaller writable working set)")
	minutes := flag.Int("minutes", 10, "workload length in virtual minutes")
	seed := flag.Int64("seed", 1993, "workload seed")
	flag.Parse()

	cfg := trace.DefaultBaker(sim.Duration(*minutes)*sim.Minute, *seed)
	cfg.OverwriteFrac = 0.6
	cfg.HotSkew = *hot
	tr, err := trace.GenerateBaker(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ts := tr.Stats()
	fmt.Printf("workload: %d ops, %.0fMB written, skew %.2f\n\n", ts.Ops,
		float64(ts.BytesWritten)/(1<<20), *hot)
	fmt.Printf("%-12s %-16s %-10s %-12s %-12s %s\n",
		"DRAM/flash", "flash MB written", "absorbed", "mean write", "energy", "outcome")

	budget := *budgetMB << 20
	for frac := 1; frac <= 4; frac++ {
		dramBytes := budget * int64(frac) / 5
		flashBytes := budget - dramBytes
		sys, err := core.NewSolidState(core.SolidStateConfig{
			DRAMBytes:   dramBytes,
			FlashBytes:  flashBytes,
			BufferBytes: dramBytes / 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		st, err := core.Replay(sys, tr)
		outcome := "ok"
		if err != nil {
			if errors.Is(err, storman.ErrNoFlash) || errors.Is(err, storman.ErrNoDRAM) {
				outcome = "OUT OF SPACE"
			} else {
				log.Fatal(err)
			}
		}
		ss := sys.Storage.Stats()
		fmt.Printf("%2d/%2dMB      %-16.1f %-10s %-12v %-12v %s\n",
			dramBytes>>20, flashBytes>>20,
			float64(ss.FlushedBytes)/(1<<20),
			fmt.Sprintf("%.0f%%", ss.Reduction()*100),
			sim.Duration(st.WriteLatency.Mean()),
			sys.Meter().Total(),
			outcome)
	}
	fmt.Println("\nRe-run with -hot 1.01 (large writable working set) or -hot 2.0 (tiny one)")
	fmt.Println("to see the best split move — the paper's point: 'the answer depends on the workload'.")
}
