// Benchmarks regenerating every experiment in the paper-reproduction
// index (DESIGN.md §3). Each BenchmarkEn runs experiment En end to end and
// logs its table once, so
//
//	go test -bench=. -benchmem
//
// reproduces the full set of results. Key scalar outcomes are attached as
// custom benchmark metrics so shape regressions show up in benchstat.
package ssmobile_test

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"ssmobile/internal/core"
	"ssmobile/internal/obs"
	"ssmobile/internal/prof"
	"ssmobile/internal/server"
	"ssmobile/internal/sim"
	"ssmobile/internal/trace"
	"ssmobile/internal/workload"
)

const benchSeed = 1993

// logTables renders each table through b.Log exactly once per benchmark.
func logTables(b *testing.B, logged *bool, tables ...*core.Table) {
	if *logged {
		return
	}
	*logged = true
	for _, t := range tables {
		b.Log(t.String())
	}
}

func BenchmarkE1DeviceAccess(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E1DeviceComparison(core.NewEnv(nil, 1))
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE2CostCrossover(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E2CostCrossover()
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE3WriteBuffer(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E3WriteBuffering(core.NewEnv(nil, 1), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		// Attach the 1MB-row reduction as a metric.
		for _, row := range t.Rows {
			if row[0] == "1MB" {
				v, _ := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
				b.ReportMetric(v, "%reduction@1MB")
			}
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE3FlushPolicyAblation(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E3FlushPolicyAblation(core.NewEnv(nil, 1), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE3BlockSizeAblation(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E3BlockSizeAblation(core.NewEnv(nil, 1), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE4ReadInPlace(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E4ReadInPlace(core.NewEnv(nil, 1))
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE5XIP(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E5XIP(core.NewEnv(nil, 1))
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE6WearLeveling(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E6WearLeveling(core.NewEnv(nil, 1), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE6Lifetime(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E6Lifetime(core.NewEnv(nil, 1), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE6StaticLeveling(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E6Static(core.NewEnv(nil, 1), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE7Banking(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E7Banking(core.NewEnv(nil, 1), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE7Segregation(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E7Segregation(core.NewEnv(nil, 1), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE8Sizing(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E8Sizing(core.NewEnv(nil, 1), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE9EndToEnd(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E9EndToEnd(core.NewEnv(nil, 1), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE9FlashParts(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		t, err := core.E9FlashParts(core.NewEnv(nil, 1), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, t)
	}
}

func BenchmarkE10CrashAndBattery(b *testing.B) {
	logged := false
	for i := 0; i < b.N; i++ {
		tables, err := core.E10CrashAndBattery(core.NewEnv(nil, 1), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		logTables(b, &logged, tables...)
	}
}

// benchEngines parameterizes the serve benchmarks by storage backend,
// so `make bench` reports per-backend numbers side by side.
var benchEngines = []string{"ftl", "pdl"}

// BenchmarkServeThroughput drives the object-storage service (the E12
// serving stack) with a seeded 8-client open-loop workload and reports
// the served virtual-time throughput and tail latency as metrics, once
// per storage backend. It measures the Go cost of the whole
// fs→storman→engine→flash request path under multiplexed client load.
func BenchmarkServeThroughput(b *testing.B) {
	for _, eng := range benchEngines {
		b.Run(eng, func(b *testing.B) {
			var st server.RunStats
			for i := 0; i < b.N; i++ {
				st = serveWorkload(b, eng, nil)
			}
			b.ReportMetric(st.CompletedRate(), "served-vop/s")
			b.ReportMetric(float64(st.Shed), "shed")
			b.ReportMetric(st.Lat.Quantile(0.99)/1e6, "p99-vms")
		})
	}
}

// BenchmarkTracedServeThroughput is BenchmarkServeThroughput with
// request-scoped tracing enabled end to end: every layer shares an
// explicit observer (live tracer), so every request is served under a
// trace context and every device op records a span. Comparing its ns/op
// against BenchmarkServeThroughput is the tracing overhead the PR's
// BENCH_pr5.json records; the served/shed/p99 metrics must be identical
// to the untraced run — tracing never alters simulated behaviour.
func BenchmarkTracedServeThroughput(b *testing.B) {
	for _, eng := range benchEngines {
		b.Run(eng, func(b *testing.B) {
			var st server.RunStats
			for i := 0; i < b.N; i++ {
				st = serveWorkload(b, eng, obs.New(1<<16))
			}
			b.ReportMetric(st.CompletedRate(), "served-vop/s")
			b.ReportMetric(float64(st.Shed), "shed")
			b.ReportMetric(st.Lat.Quantile(0.99)/1e6, "p99-vms")
		})
	}
}

// serveWorkload builds a fresh serving stack over the named storage
// backend (optionally observed) and drives the standard 8-client
// benchmark workload through it once.
func serveWorkload(b *testing.B, engine string, o *obs.Observer) server.RunStats {
	b.Helper()
	sys, err := core.NewSolidState(core.SolidStateConfig{
		DRAMBytes: 8 << 20, FlashBytes: 16 << 20, BufferBytes: 1 << 20,
		IdleCleanBlocks: 24, Engine: engine, Obs: o,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Backend{
		FS: sys.FS, Storage: sys.Storage, Engine: sys.Engine, Clock: sys.Clock(),
	}, server.Config{Obs: o})
	if err != nil {
		b.Fatal(err)
	}
	st, err := server.RunWorkload(srv, workload.Config{
		Seed: benchSeed, Clients: 8, OpsPerClient: 200, Keys: 16,
		Popularity: workload.Zipf,
		Mix:        workload.Mix{Read: 0.55, Write: 0.35, Truncate: 0.02, Delete: 0.03, Sync: 0.05},
	})
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// serveProfDir directs BenchmarkServeAllocProfile's pprof output.
var serveProfDir = flag.String("serveprof", "",
	"directory BenchmarkServeAllocProfile writes serve.cpu.pprof and serve.heap.pprof into")

// BenchmarkServeAllocProfile is BenchmarkServeThroughput instrumented
// for profiling: it captures a CPU profile across the timed loop and an
// allocation (heap) profile after it, both through internal/prof, so
// the serve path's host cost can be broken down function by function.
// Run it via `make bench` or directly:
//
//	go test -run xxx -bench BenchmarkServeAllocProfile -benchtime 10x \
//	    -serveprof /tmp/serveprof -memprofilerate=1 .
//	go tool pprof -sample_index=alloc_objects ssmobile.test /tmp/serveprof/serve.heap.pprof
//
// -memprofilerate=1 records every allocation exactly; the default rate
// samples one allocation per 512 KiB, which badly distorts object
// counts for the small objects that dominate this path. Without
// -serveprof the benchmark still runs and reports the usual metrics,
// so it stays safe under `go test -bench .`.
func BenchmarkServeAllocProfile(b *testing.B) {
	if *serveProfDir != "" {
		if err := os.MkdirAll(*serveProfDir, 0o755); err != nil {
			b.Fatal(err)
		}
		stop, err := prof.StartCPU(filepath.Join(*serveProfDir, "serve.cpu.pprof"))
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			if err := prof.WriteHeap(filepath.Join(*serveProfDir, "serve.heap.pprof")); err != nil {
				b.Fatal(err)
			}
		}()
		defer stop()
		b.ResetTimer()
	}
	var st server.RunStats
	for i := 0; i < b.N; i++ {
		st = serveWorkload(b, "ftl", nil)
	}
	b.ReportMetric(st.CompletedRate(), "served-vop/s")
	b.ReportMetric(st.Lat.Quantile(0.99)/1e6, "p99-vms")
}

// BenchmarkRunAllSerial and BenchmarkRunAllParallel run the entire
// experiment suite end to end, sequentially and on a GOMAXPROCS-wide
// worker pool. Their outputs are byte-identical (see
// internal/core/determinism_test.go); the only difference is wall time,
// which BenchmarkRunAllParallel reports as a "speedup" metric against a
// serial run measured in the same process.

func BenchmarkRunAllSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := core.RunAllParallel(io.Discard, benchSeed, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllParallel(b *testing.B) {
	serialStart := time.Now()
	if err := core.RunAllParallel(io.Discard, benchSeed, 1); err != nil {
		b.Fatal(err)
	}
	serial := time.Since(serialStart)

	par := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := core.RunAllParallel(io.Discard, benchSeed, par); err != nil {
			b.Fatal(err)
		}
	}
	perOp := time.Since(start) / time.Duration(b.N)
	b.StopTimer()
	b.ReportMetric(float64(par), "workers")
	b.ReportMetric(serial.Seconds()/perOp.Seconds(), "speedup")
}

// Micro-benchmarks of the two storage organisations' hot paths: these
// measure the Go cost of the simulation itself (ops/sec of the simulator),
// useful when extending the models.

func BenchmarkSolidStateWritePath(b *testing.B) {
	sys, err := core.NewSolidState(core.SolidStateConfig{DRAMBytes: 16 << 20, FlashBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Create("bench"); err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.WriteAt("bench", int64(i%1024)*4096, data); err != nil {
			b.Fatal(err)
		}
		if err := sys.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolidStateReadPath(b *testing.B) {
	sys, err := core.NewSolidState(core.SolidStateConfig{DRAMBytes: 16 << 20, FlashBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Create("bench"); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.WriteAt("bench", 0, make([]byte, 1<<20)); err != nil {
		b.Fatal(err)
	}
	if err := sys.Sync(); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ReadAt("bench", int64(i%256)*4096, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := trace.GenerateBaker(trace.DefaultBaker(10*sim.Minute, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayOnSolidState(b *testing.B) {
	tr, err := trace.GenerateBaker(trace.DefaultBaker(2*sim.Minute, benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSolidState(core.SolidStateConfig{DRAMBytes: 16 << 20, FlashBytes: 64 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Replay(sys, tr); err != nil {
			b.Fatal(err)
		}
	}
}
