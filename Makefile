# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so green here means green there.

PROFDIR ?= /tmp/serveprof

.PHONY: build test race bench allocgate

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -timeout 30m ./...

# bench reports the serve benchmarks with allocation counts, then
# re-runs the serve workload under BenchmarkServeAllocProfile to capture
# CPU and exact-allocation pprof profiles into $(PROFDIR) via
# internal/prof. Inspect with:
#   go tool pprof -sample_index=alloc_objects ssmobile.test $(PROFDIR)/serve.heap.pprof
bench:
	go test -run '^$$' -bench 'BenchmarkServeThroughput$$|BenchmarkTracedServeThroughput$$' \
		-benchmem -benchtime 20x .
	go test -run '^$$' -bench 'BenchmarkServeAllocProfile$$' -benchtime 10x \
		-serveprof $(PROFDIR) -memprofilerate=1 .
	@echo "profiles written to $(PROFDIR)"

# allocgate enforces the committed allocs/op budgets (alloc_budget.txt)
# on the serve hot path.
allocgate:
	./scripts/allocgate.sh
