#!/usr/bin/env bash
# Allocation-regression gate for the serve hot path.
#
# Runs the serve benchmarks with -benchmem and fails if any benchmark's
# allocs/op exceeds its budget in alloc_budget.txt. Run by CI on every
# push and locally via `make allocgate`.
set -euo pipefail
cd "$(dirname "$0")/.."

budget_file=alloc_budget.txt

out=$(go test -run '^$' -benchtime 5x -benchmem \
	-bench 'BenchmarkServeThroughput$|BenchmarkTracedServeThroughput$' .)
echo "$out"

fail=0
while read -r name budget; do
	case "$name" in ''|\#*) continue ;; esac
	# Benchmark lines look like:
	#   BenchmarkServeThroughput-8  5  26ms/op ... 1970 allocs/op
	allocs=$(echo "$out" | awk -v n="$name" '
		$1 ~ ("^" n "(-[0-9]+)?$") {
			for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
		}')
	if [ -z "$allocs" ]; then
		echo "allocgate: $name did not run" >&2
		fail=1
		continue
	fi
	if [ "$allocs" -gt "$budget" ]; then
		echo "allocgate: $name allocated $allocs/op, budget is $budget/op" >&2
		fail=1
	else
		echo "allocgate: $name $allocs/op within budget $budget/op"
	fi
done <"$budget_file"

exit "$fail"
