// Command ssmfs is an interactive shell over the solid-state storage
// organisation: a memory-resident file system on simulated battery-backed
// DRAM and flash. It exposes the whole stability story at a prompt —
// write files, crash the OS, kill the power, remount, and watch what
// survives and what it all costs in virtual time and energy.
//
//	go run ./cmd/ssmfs
//	ssmfs> help
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ssmobile/internal/core"
	"ssmobile/internal/fs"
	"ssmobile/internal/obs"
	"ssmobile/internal/prof"
	"ssmobile/internal/sim"
)

const shellHelp = `commands:
  ls [path]            list a directory
  cat PATH             print a file
  write PATH TEXT...   replace a file's contents
  append PATH TEXT...  append to a file
  mkdir PATH           create directories (like mkdir -p)
  rm PATH              remove a file or empty directory
  mv OLD NEW           rename
  ln OLD NEW           hard link
  stat PATH            show file info
  fill PATH KB         write KB kilobytes of patterned data
  sync                 checkpoint metadata + migrate all dirty data to flash
  tick [seconds]       advance virtual time (default 60s) and run daemons
  crash                OS crash: recover from the battery-backed recovery box
  powerfail            power failure: full device-scan remount from flash
  stats                storage-manager / flash / energy counters
  time                 show the virtual clock
  help                 this text
  exit                 quit`

type shell struct {
	sys *core.SolidStateSystem
	out io.Writer
}

func main() {
	metricsOut := flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
	traceOut := flag.String("trace-out", "", "write the op-span trace in Chrome trace_event format to this file")
	traceJSONL := flag.String("trace-jsonl", "", "write the op-span trace as JSON lines to this file")
	traceCap := flag.Int("trace-cap", 0, "span ring-buffer capacity (0 = default 65536)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stopCPU, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmfs:", err)
		os.Exit(1)
	}

	o := obs.New(*traceCap)
	obs.SetDefault(o)

	sys, err := core.NewSolidState(core.SolidStateConfig{
		DRAMBytes:  8 << 20,
		FlashBytes: 32 << 20,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmfs:", err)
		os.Exit(1)
	}
	sh := &shell{sys: sys, out: os.Stdout}
	fmt.Printf("ssmfs: %s — type 'help'\n", sys.Name())
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("ssmfs> ")
		if !sc.Scan() {
			fmt.Println()
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			break
		}
		if err := sh.run(line); err != nil {
			fmt.Fprintln(os.Stdout, "error:", err)
		}
	}
	var exitErr error
	if err := obs.DumpFiles(o, *metricsOut, *traceOut, *traceJSONL); err != nil {
		fmt.Fprintln(os.Stderr, "ssmfs:", err)
		exitErr = err
	}
	if err := prof.WriteHeap(*memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "ssmfs:", err)
		exitErr = err
	}
	stopCPU()
	if exitErr != nil {
		os.Exit(1)
	}
}

func (s *shell) run(line string) error {
	args := strings.Fields(line)
	cmd, args := args[0], args[1:]
	switch cmd {
	case "help":
		fmt.Fprintln(s.out, shellHelp)
	case "ls":
		path := "/"
		if len(args) > 0 {
			path = args[0]
		}
		infos, err := s.sys.FS.ReadDir(path)
		if err != nil {
			return err
		}
		for _, in := range infos {
			fmt.Fprintf(s.out, "%-5s %8d  %s\n", in.Kind, in.Size, in.Name)
		}
	case "cat":
		if len(args) != 1 {
			return fmt.Errorf("usage: cat PATH")
		}
		data, err := s.sys.FS.ReadFile(args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%s\n", data)
	case "write", "append":
		if len(args) < 2 {
			return fmt.Errorf("usage: %s PATH TEXT...", cmd)
		}
		text := strings.Join(args[1:], " ")
		if cmd == "write" {
			return s.sys.FS.WriteFile(args[0], []byte(text))
		}
		if !s.sys.FS.Exists(args[0]) {
			if err := s.sys.FS.Create(args[0]); err != nil {
				return err
			}
		}
		_, err := s.sys.FS.Append(args[0], []byte(text+"\n"))
		return err
	case "mkdir":
		if len(args) != 1 {
			return fmt.Errorf("usage: mkdir PATH")
		}
		return s.sys.FS.MkdirAll(args[0])
	case "rm":
		if len(args) != 1 {
			return fmt.Errorf("usage: rm PATH")
		}
		return s.sys.FS.Remove(args[0])
	case "mv":
		if len(args) != 2 {
			return fmt.Errorf("usage: mv OLD NEW")
		}
		return s.sys.FS.Rename(args[0], args[1])
	case "ln":
		if len(args) != 2 {
			return fmt.Errorf("usage: ln OLD NEW")
		}
		return s.sys.FS.Link(args[0], args[1])
	case "stat":
		if len(args) != 1 {
			return fmt.Errorf("usage: stat PATH")
		}
		info, err := s.sys.FS.Stat(args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%s: %s, %d bytes, ino %d, nlink %d, mtime %v\n",
			info.Name, info.Kind, info.Size, info.Ino, info.Nlink, info.Mtime)
	case "fill":
		if len(args) != 2 {
			return fmt.Errorf("usage: fill PATH KB")
		}
		kb, err := strconv.Atoi(args[1])
		if err != nil || kb <= 0 {
			return fmt.Errorf("bad size %q", args[1])
		}
		data := make([]byte, kb*1024)
		for i := range data {
			data[i] = byte(i)
		}
		start := s.sys.Clock().Now()
		if err := s.sys.FS.WriteFile(args[0], data); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "wrote %dKB in %v\n", kb, s.sys.Clock().Now().Sub(start))
	case "sync":
		start := s.sys.Clock().Now()
		if err := s.sys.Sync(); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "synced in %v\n", s.sys.Clock().Now().Sub(start))
	case "tick":
		secs := 60
		if len(args) > 0 {
			v, err := strconv.Atoi(args[0])
			if err != nil || v <= 0 {
				return fmt.Errorf("bad seconds %q", args[0])
			}
			secs = v
		}
		s.sys.Clock().Advance(sim.Duration(secs) * sim.Second)
		if err := s.sys.Tick(); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "advanced to %v\n", s.sys.Clock().Now())
	case "crash":
		cfg := fs.Config{RBoxBase: 0, RBoxBytes: 1 << 20}
		recovered, err := fs.RecoverAfterCrash(cfg, s.sys.Clock(), s.sys.Storage, s.sys.DRAM)
		if err != nil {
			return err
		}
		s.sys.FS = recovered
		fmt.Fprintf(s.out, "OS crashed and recovered from the recovery box: %d inodes, 0 bytes lost\n",
			recovered.NumInodes())
	case "powerfail":
		before := s.sys.FS.NumInodes()
		s.sys.DRAM.PowerFail()
		remounted, err := s.sys.RemountAfterPowerFailure()
		if err != nil {
			return err
		}
		*s.sys = *remounted
		fmt.Fprintf(s.out, "power failed; device-scan remount recovered %d of %d inodes\n",
			s.sys.FS.NumInodes(), before)
	case "stats":
		ss := s.sys.Storage.Stats()
		fst := s.sys.Flash.Stats()
		fmt.Fprintf(s.out, "storage: wrote %dKB, flushed %dKB to flash (%.0f%% absorbed), %d cow, %d evictions\n",
			ss.HostBytesWritten>>10, ss.FlushedBytes>>10, ss.Reduction()*100, ss.CopyOnWrites, ss.Evictions)
		fmt.Fprintf(s.out, "flash:   %d programs, %d erases, max erase count %d, wear CoV %.2f\n",
			fst.Programs, fst.Erases, fst.MaxEraseCount, fst.EraseCountCoV)
		fmt.Fprintf(s.out, "DRAM buffer: %d/%d pages in use; flash pages free: %d\n",
			ss.DRAMPagesInUse, ss.DRAMPagesTotal, s.sys.Storage.FlashPagesFree())
		fmt.Fprintf(s.out, "energy:  %v total\n", s.sys.Meter().Total())
	case "time":
		fmt.Fprintf(s.out, "virtual time %v\n", s.sys.Clock().Now())
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
	return nil
}
