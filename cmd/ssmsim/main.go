// Command ssmsim runs the experiments that reproduce the claims of
// "Operating System Implications of Solid-State Mobile Computers"
// (Cáceres, Douglis, Li, Marsh; HotOS-IV 1993).
//
// Usage:
//
//	ssmsim [-seed N] all                        run every experiment
//	ssmsim [-seed N] e1 e3 ...                  run selected experiments
//	ssmsim list                                 list experiment ids
//	ssmsim replay -trace FILE [-system solid|disk|both]
//	                                            replay a trace (see ssmtrace)
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"

	"ssmobile/internal/core"
	"ssmobile/internal/sim"
	"ssmobile/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 1993, "workload seed (experiments are deterministic per seed)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ssmsim [-seed N] all | list | <experiment id>...\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", core.ExperimentIDs())
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, id := range core.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if args[0] == "replay" {
		replay(args[1:])
		return
	}
	if args[0] == "all" {
		if err := core.RunAll(os.Stdout, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "ssmsim:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range args {
		if err := core.RunExperiment(os.Stdout, id, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "ssmsim:", err)
			os.Exit(1)
		}
	}
}

// replay runs a trace file against one or both storage organisations and
// prints a latency/energy summary.
func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	traceFile := fs.String("trace", "", "trace file (ssmtrace format; required)")
	system := fs.String("system", "both", "solid, disk, or both")
	dramMB := fs.Int64("dram", 16, "DRAM size in MB")
	secondaryMB := fs.Int64("secondary", 64, "flash/disk size in MB")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *traceFile == "" {
		fmt.Fprintln(os.Stderr, "ssmsim replay: -trace is required")
		os.Exit(2)
	}
	f, err := os.Open(*traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmsim:", err)
		os.Exit(1)
	}
	tr, err := trace.ReadTrace(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmsim:", err)
		os.Exit(1)
	}

	var systems []core.System
	if *system == "solid" || *system == "both" {
		s, err := core.NewSolidState(core.SolidStateConfig{
			DRAMBytes: *dramMB << 20, FlashBytes: *secondaryMB << 20,
			RBoxBytes: 4 << 20, SnapshotEvery: 2048,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssmsim:", err)
			os.Exit(1)
		}
		systems = append(systems, s)
	}
	if *system == "disk" || *system == "both" {
		d, err := core.NewDisk(core.DiskConfig{DRAMBytes: *dramMB << 20, DiskBytes: *secondaryMB << 20})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssmsim:", err)
			os.Exit(1)
		}
		systems = append(systems, d)
	}
	if len(systems) == 0 {
		fmt.Fprintf(os.Stderr, "ssmsim: unknown -system %q\n", *system)
		os.Exit(2)
	}
	for _, sys := range systems {
		st, err := core.Replay(sys, tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssmsim: %s: %v\n", sys.Name(), err)
			os.Exit(1)
		}
		fmt.Printf("%s:\n", sys.Name())
		fmt.Printf("  ops %d, wrote %.1fMB, read %.1fMB over %v\n",
			st.Ops, float64(st.BytesWritten)/(1<<20), float64(st.BytesRead)/(1<<20), st.Elapsed)
		fmt.Printf("  read  mean %v  p99 %v\n",
			sim.Duration(st.ReadLatency.Mean()), sim.Duration(st.ReadLatency.Quantile(0.99)))
		fmt.Printf("  write mean %v  p99 %v\n",
			sim.Duration(st.WriteLatency.Mean()), sim.Duration(st.WriteLatency.Quantile(0.99)))
		fmt.Printf("  energy %v\n", st.EnergyTotal)
	}
}
