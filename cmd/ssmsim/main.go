// Command ssmsim runs the experiments that reproduce the claims of
// "Operating System Implications of Solid-State Mobile Computers"
// (Cáceres, Douglis, Li, Marsh; HotOS-IV 1993).
//
// Usage:
//
//	ssmsim [-seed N] [-parallel P] [-metrics FILE] [-trace-out FILE] [-trace-jsonl FILE] all
//	                                            run every experiment
//	ssmsim [flags] e1 e3 ...                    run selected experiments
//	ssmsim list                                 list experiment ids
//	ssmsim replay -trace FILE [-system solid|disk|both]
//	                                            replay a trace (see ssmtrace)
//	ssmsim crash [-points N] [-fate before|during|after|all] [-engine ftl|pdl]
//	                                            enumerate power-cut crash points
//
// The crash subcommand replays the reference workload once per
// destructive flash operation, cutting power at that operation (torn
// programs, interrupted erases), remounting by device scan, and checking
// recovery invariants; it exits nonzero if any crash point violates
// them. -points bounds the sweep for quick runs; the default enumerates
// every operation. -engine selects the storage backend under test
// (ftl or pdl) — CI sweeps both.
//
// -parallel runs independent experiments and sweep configurations on a
// worker pool (default: GOMAXPROCS); output is byte-identical to
// -parallel 1 for any seed. -metrics dumps every layer's counters,
// gauges and histograms as JSON; -trace-out writes the retained op spans
// in Chrome trace_event format (open in chrome://tracing or
// https://ui.perfetto.dev); -trace-jsonl writes them as JSON lines.
// -cpuprofile/-memprofile write pprof profiles. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"ssmobile/internal/core"
	"ssmobile/internal/crashtest"
	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/prof"
	"ssmobile/internal/sim"
	"ssmobile/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 1993, "workload seed (experiments are deterministic per seed)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for independent experiments and sweep points (1 = sequential; output is identical either way)")
	metricsOut := flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
	traceOut := flag.String("trace-out", "", "write the op-span trace in Chrome trace_event format to this file")
	traceJSONL := flag.String("trace-jsonl", "", "write the op-span trace as JSON lines to this file")
	traceCap := flag.Int("trace-cap", 0, "span ring-buffer capacity (0 = default 65536; oldest spans drop first)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ssmsim [flags] all | list | replay ... | crash ... | <experiment id>...\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", core.ExperimentIDs())
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	stopCPU, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fatal(err)
	}

	// Every layer built anywhere in the process reports here; concurrent
	// jobs run under private observers that merge back deterministically.
	o := obs.New(*traceCap)
	obs.SetDefault(o)

	var runErr error
	switch args[0] {
	case "list":
		desc := core.Descriptions()
		for _, id := range core.ExperimentIDs() {
			fmt.Printf("%-4s %s\n", id, desc[id])
		}
	case "replay":
		runErr = replay(args[1:])
	case "crash":
		runErr = crash(args[1:])
	case "all":
		runErr = core.RunAllParallel(os.Stdout, *seed, *parallel)
	default:
		for _, id := range args {
			if runErr = core.RunExperimentParallel(os.Stdout, id, *seed, *parallel); runErr != nil {
				break
			}
		}
	}

	// Dump telemetry and profiles even on a failed run: the metrics and
	// spans up to the failure are exactly what you need to debug it.
	if err := obs.DumpFiles(o, *metricsOut, *traceOut, *traceJSONL); err != nil {
		fmt.Fprintln(os.Stderr, "ssmsim:", err)
		if runErr == nil {
			runErr = err
		}
	}
	if err := prof.WriteHeap(*memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "ssmsim:", err)
		if runErr == nil {
			runErr = err
		}
	}
	stopCPU()
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "ssmsim:", runErr)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssmsim:", err)
	os.Exit(1)
}

// crash runs the crash-point enumeration: the reference workload is cut
// at every destructive flash op and recovered, and any violated
// guarantee fails the run. CI uses it to gate on crash consistency.
func crash(args []string) error {
	fs := flag.NewFlagSet("crash", flag.ExitOnError)
	points := fs.Int("points", 0, "max op indexes to enumerate (0 = every destructive op)")
	fate := fs.String("fate", "all", "cut fate: before, during, after, or all")
	eng := fs.String("engine", "ftl", "storage backend under test: ftl or pdl")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := crashtest.Config{MaxPoints: *points, Engine: *eng}
	switch *fate {
	case "before":
		cfg.Fates = []flash.Outcome{flash.CutBefore}
	case "during":
		cfg.Fates = []flash.Outcome{flash.CutDuring}
	case "after":
		cfg.Fates = []flash.Outcome{flash.CutAfter}
	case "all":
	default:
		return fmt.Errorf("crash: unknown -fate %q", *fate)
	}
	res, err := crashtest.Enumerate(cfg, crashtest.DefaultScript())
	if err != nil {
		return err
	}
	fmt.Printf("crash-point enumeration (%s engine): %d destructive ops, %d recoveries\n", cfg.Engine, res.DestructiveOps, res.PointsRun)
	fmt.Printf("  torn records rejected %d, blocks re-erased %d, blocks retired %d\n",
		res.CorruptRecords, res.ReErasedBlocks, res.RetiredBlocks)
	if len(res.Violations) == 0 {
		fmt.Println("  all recoveries upheld every invariant and data guarantee")
		return nil
	}
	for _, v := range res.Violations {
		fmt.Printf("  VIOLATION %s\n", v)
	}
	return fmt.Errorf("crash: %d of %d crash points violated recovery guarantees", len(res.Violations), res.PointsRun)
}

// replay runs a trace file against one or both storage organisations and
// prints a latency/energy summary.
func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	traceFile := fs.String("trace", "", "trace file (ssmtrace format; required)")
	system := fs.String("system", "both", "solid, disk, or both")
	dramMB := fs.Int64("dram", 16, "DRAM size in MB")
	secondaryMB := fs.Int64("secondary", 64, "flash/disk size in MB")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceFile == "" {
		return fmt.Errorf("replay: -trace is required")
	}
	f, err := os.Open(*traceFile)
	if err != nil {
		return err
	}
	tr, err := trace.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}

	var systems []core.System
	if *system == "solid" || *system == "both" {
		s, err := core.NewSolidState(core.SolidStateConfig{
			DRAMBytes: *dramMB << 20, FlashBytes: *secondaryMB << 20,
			RBoxBytes: 4 << 20, SnapshotEvery: 2048,
		})
		if err != nil {
			return err
		}
		systems = append(systems, s)
	}
	if *system == "disk" || *system == "both" {
		d, err := core.NewDisk(core.DiskConfig{DRAMBytes: *dramMB << 20, DiskBytes: *secondaryMB << 20})
		if err != nil {
			return err
		}
		systems = append(systems, d)
	}
	if len(systems) == 0 {
		return fmt.Errorf("replay: unknown -system %q", *system)
	}
	for _, sys := range systems {
		st, err := core.Replay(sys, tr)
		if err != nil {
			return fmt.Errorf("%s: %w", sys.Name(), err)
		}
		fmt.Printf("%s:\n", sys.Name())
		fmt.Printf("  ops %d, wrote %.1fMB, read %.1fMB over %v\n",
			st.Ops, float64(st.BytesWritten)/(1<<20), float64(st.BytesRead)/(1<<20), st.Elapsed)
		fmt.Printf("  read  mean %v  p99 %v\n",
			sim.Duration(st.ReadLatency.Mean()), sim.Duration(st.ReadLatency.Quantile(0.99)))
		fmt.Printf("  write mean %v  p99 %v\n",
			sim.Duration(st.WriteLatency.Mean()), sim.Duration(st.WriteLatency.Quantile(0.99)))
		fmt.Printf("  energy %v\n", st.EnergyTotal)
	}
	return nil
}
