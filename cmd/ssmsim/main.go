// Command ssmsim runs the experiments that reproduce the claims of
// "Operating System Implications of Solid-State Mobile Computers"
// (Cáceres, Douglis, Li, Marsh; HotOS-IV 1993).
//
// Usage:
//
//	ssmsim [-seed N] [-metrics FILE] [-trace-out FILE] [-trace-jsonl FILE] all
//	                                            run every experiment
//	ssmsim [flags] e1 e3 ...                    run selected experiments
//	ssmsim list                                 list experiment ids
//	ssmsim replay -trace FILE [-system solid|disk|both]
//	                                            replay a trace (see ssmtrace)
//
// -metrics dumps every layer's counters, gauges and histograms as JSON;
// -trace-out writes the retained op spans in Chrome trace_event format
// (open in chrome://tracing or https://ui.perfetto.dev); -trace-jsonl
// writes them as JSON lines. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"

	"ssmobile/internal/core"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
	"ssmobile/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 1993, "workload seed (experiments are deterministic per seed)")
	metricsOut := flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
	traceOut := flag.String("trace-out", "", "write the op-span trace in Chrome trace_event format to this file")
	traceJSONL := flag.String("trace-jsonl", "", "write the op-span trace as JSON lines to this file")
	traceCap := flag.Int("trace-cap", 0, "span ring-buffer capacity (0 = default 65536; oldest spans drop first)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ssmsim [flags] all | list | replay ... | <experiment id>...\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", core.ExperimentIDs())
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	// Every layer built anywhere in the process reports here.
	o := obs.New(*traceCap)
	obs.SetDefault(o)

	var err error
	switch args[0] {
	case "list":
		desc := core.Descriptions()
		for _, id := range core.ExperimentIDs() {
			fmt.Printf("%-4s %s\n", id, desc[id])
		}
	case "replay":
		err = replay(args[1:])
	case "all":
		err = core.RunAll(os.Stdout, *seed)
	default:
		for _, id := range args {
			if err = core.RunExperiment(os.Stdout, id, *seed); err != nil {
				break
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmsim:", err)
		os.Exit(1)
	}
	if err := obs.DumpFiles(o, *metricsOut, *traceOut, *traceJSONL); err != nil {
		fmt.Fprintln(os.Stderr, "ssmsim:", err)
		os.Exit(1)
	}
}

// replay runs a trace file against one or both storage organisations and
// prints a latency/energy summary.
func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	traceFile := fs.String("trace", "", "trace file (ssmtrace format; required)")
	system := fs.String("system", "both", "solid, disk, or both")
	dramMB := fs.Int64("dram", 16, "DRAM size in MB")
	secondaryMB := fs.Int64("secondary", 64, "flash/disk size in MB")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceFile == "" {
		return fmt.Errorf("replay: -trace is required")
	}
	f, err := os.Open(*traceFile)
	if err != nil {
		return err
	}
	tr, err := trace.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}

	var systems []core.System
	if *system == "solid" || *system == "both" {
		s, err := core.NewSolidState(core.SolidStateConfig{
			DRAMBytes: *dramMB << 20, FlashBytes: *secondaryMB << 20,
			RBoxBytes: 4 << 20, SnapshotEvery: 2048,
		})
		if err != nil {
			return err
		}
		systems = append(systems, s)
	}
	if *system == "disk" || *system == "both" {
		d, err := core.NewDisk(core.DiskConfig{DRAMBytes: *dramMB << 20, DiskBytes: *secondaryMB << 20})
		if err != nil {
			return err
		}
		systems = append(systems, d)
	}
	if len(systems) == 0 {
		return fmt.Errorf("replay: unknown -system %q", *system)
	}
	for _, sys := range systems {
		st, err := core.Replay(sys, tr)
		if err != nil {
			return fmt.Errorf("%s: %w", sys.Name(), err)
		}
		fmt.Printf("%s:\n", sys.Name())
		fmt.Printf("  ops %d, wrote %.1fMB, read %.1fMB over %v\n",
			st.Ops, float64(st.BytesWritten)/(1<<20), float64(st.BytesRead)/(1<<20), st.Elapsed)
		fmt.Printf("  read  mean %v  p99 %v\n",
			sim.Duration(st.ReadLatency.Mean()), sim.Duration(st.ReadLatency.Quantile(0.99)))
		fmt.Printf("  write mean %v  p99 %v\n",
			sim.Duration(st.WriteLatency.Mean()), sim.Duration(st.WriteLatency.Quantile(0.99)))
		fmt.Printf("  energy %v\n", st.EnergyTotal)
	}
	return nil
}
