// Command ssmserve exposes the solid-state storage stack as a
// multi-tenant object-storage service over TCP — the serving-stack form
// of the paper's write-buffering and cleaning argument. See DESIGN.md §9
// for the service and backpressure model and experiment E12 (ssmsim e12)
// for the deterministic saturation study.
//
// Usage:
//
//	ssmserve [flags] serve        serve until SIGINT/SIGTERM, then drain
//	ssmserve [flags] smoke        self-contained smoke run: serve on a
//	                              loopback port, drive a short seeded
//	                              workload over TCP, verify zero
//	                              unexpected errors, exit cleanly
//
// serve flags: -addr (default 127.0.0.1:7633), -dram/-flash/-buffer MB
// sizes, -idle-clean blocks, -high/-low admission watermarks,
// -sync-window group-commit window, plus the usual -metrics and
// -cpuprofile/-memprofile outputs.
//
// -nodes N (either subcommand) serves a cluster instead of one card:
// N in-process nodes, each its own card stack, behind the consistent-hash
// router (internal/cluster) — per-tenant/key placement, primary+replica
// writes, node-local shed retry, and health-driven rebalancing. The size
// flags apply to each node; the ops surface reflects node 0. See
// DESIGN.md §13 and experiment E14 (ssmsim e14).
//
// smoke flags: -clients, -ops, -seed, -write ratio. CI runs smoke to
// gate the server path: the run fails on any error other than the
// typed overload shed.
//
// The protocol is line-oriented text with binary payloads (see
// internal/server/net.go); a session is debuggable with nc(1):
//
//	$ nc 127.0.0.1 7633
//	hello alice
//	ok 0
//	sync
//	ok 0
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"ssmobile/internal/cluster"
	"ssmobile/internal/core"
	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/prof"
	"ssmobile/internal/server"
	"ssmobile/internal/sim"
	"ssmobile/internal/workload"
)

func main() {
	nodeCount := flag.Int("nodes", 1, "cluster size: 1 serves a single card; N>1 shards tenants' keys over N card stacks by consistent hash, with primary+replica writes and health-driven rebalancing (size flags apply per node)")
	dramMB := flag.Int64("dram", 8, "DRAM size in MB")
	flashMB := flag.Int64("flash", 32, "flash size in MB")
	bufferMB := flag.Int64("buffer", 2, "write-buffer region in MB")
	idleClean := flag.Int("idle-clean", 8, "idle-cleaning free-block target (0 disables idle cleaning)")
	engineName := flag.String("engine", "ftl", "storage backend: ftl (page-mapped translation layer) or pdl (page-differential logging)")
	high := flag.Float64("high", 0.9, "admission high watermark (buffer occupancy fraction)")
	low := flag.Float64("low", 0.75, "admission low watermark")
	syncWindow := flag.Duration("sync-window", 0, "sync group-commit window (0 = default 50ms)")
	metricsOut := flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")

	addr := flag.String("addr", "127.0.0.1:7633", "serve: listen address")
	adminAddr := flag.String("admin", "", "ops-surface HTTP address (/metrics, /healthz, /debug/pprof, /debug/flightrecord); empty disables (smoke always binds one on 127.0.0.1:0)")
	flightDir := flag.String("flight", "", "flight-recorder output directory; empty disables the recorder")

	clients := flag.Int("clients", 4, "smoke: concurrent clients")
	ops := flag.Int("ops", 200, "smoke: requests per client")
	seed := flag.Int64("seed", 1993, "smoke: workload seed")
	writeRatio := flag.Float64("write", 0.4, "smoke: write fraction of the mix")

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ssmserve [flags] serve | smoke\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	stopCPU, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fatal(err)
	}
	o := obs.New(0)
	obs.SetDefault(o)

	tcp, admin, mergeTelemetry, frObs, err := build(buildConfig{
		nodes:  *nodeCount,
		dramMB: *dramMB, flashMB: *flashMB, bufferMB: *bufferMB,
		idleClean: *idleClean, engine: *engineName, high: *high, low: *low,
		syncWindow: sim.D(*syncWindow),
		obs:        o,
	})
	if err != nil {
		fatal(err)
	}

	// The flight recorder snapshots the recent span ring plus metrics on
	// incidents (shed-engage, drain, power-cut remount) and on demand.
	// Smoke provisions its own temporary directory when none is given so
	// CI exercises the dump path unconditionally. It records from frObs
	// (the ambient observer, or node 0's private one in cluster mode —
	// the same observer the ops surface is bound to) and is installed on
	// both that observer and the default so the admin endpoint and the
	// drain path each find it.
	fdir := *flightDir
	if fdir == "" && flag.Arg(0) == "smoke" {
		tmp, err := os.MkdirTemp("", "ssmserve-flight-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		fdir = tmp
	}
	if fdir != "" {
		fr, err := obs.NewFlightRecorder(frObs, fdir, 0, 0)
		if err != nil {
			fatal(err)
		}
		frObs.SetFlightRecorder(fr)
		if frObs != o {
			o.SetFlightRecorder(fr)
		}
	}

	var runErr error
	switch flag.Arg(0) {
	case "serve":
		runErr = serve(tcp, admin, *addr, *adminAddr)
	case "smoke":
		runErr = smoke(tcp, admin, smokeConfig{
			clients: *clients, ops: *ops, seed: *seed, writeRatio: *writeRatio,
			nodes: *nodeCount,
		})
	default:
		flag.Usage()
		os.Exit(2)
	}

	mergeTelemetry()
	if err := obs.DumpFiles(o, *metricsOut, "", ""); err != nil {
		fmt.Fprintln(os.Stderr, "ssmserve:", err)
		if runErr == nil {
			runErr = err
		}
	}
	if err := prof.WriteHeap(*memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "ssmserve:", err)
		if runErr == nil {
			runErr = err
		}
	}
	stopCPU()
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "ssmserve:", runErr)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssmserve:", err)
	os.Exit(1)
}

type buildConfig struct {
	nodes                     int
	dramMB, flashMB, bufferMB int64
	idleClean                 int
	engine                    string
	high, low                 float64
	syncWindow                sim.Duration
	obs                       *obs.Observer
}

// build assembles the service: a single server over one card stack, or
// (nodes > 1) a consistent-hash cluster router over N of them. It
// returns the TCP front end, the ops surface (in cluster mode bound to
// node 0's server — each node has its own telemetry), a hook that
// folds per-node telemetry into the ambient observer at exit, and the
// observer the flight recorder should snapshot (the one the serving
// spans actually land in).
func build(bc buildConfig) (*server.TCP, *server.Admin, func(), *obs.Observer, error) {
	if bc.nodes <= 1 {
		o := bc.obs
		sys, err := core.NewSolidState(core.SolidStateConfig{
			DRAMBytes:       bc.dramMB << 20,
			FlashBytes:      bc.flashMB << 20,
			BufferBytes:     bc.bufferMB << 20,
			IdleCleanBlocks: bc.idleClean,
			Engine:          bc.engine,
		})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		srv, err := server.New(server.Backend{
			FS: sys.FS, Storage: sys.Storage, Engine: sys.Engine, Clock: sys.Clock(),
		}, server.Config{
			HighWatermark:   bc.high,
			LowWatermark:    bc.low,
			SyncBatchWindow: bc.syncWindow,
			OnShedEngage: func() {
				// Capture the span ring the moment overload protection kicks
				// in — the spans leading up to it are the interesting ones.
				if fr := o.FlightRecorder(); fr != nil {
					fr.Dump("shed-engage")
				}
			},
		})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return server.NewTCP(srv), server.NewAdmin(srv, o), func() {}, o, nil
	}

	// Cluster mode: each node is a full card stack behind its own server,
	// with a private observer so the router's health sweeps read per-card
	// wear (the SMART report is meaningless over a mixed registry).
	nodes := make([]*cluster.Node, bc.nodes)
	privs := make([]*obs.Observer, bc.nodes)
	for i := range nodes {
		node, priv, err := core.NewClusterNode(core.ClusterNodeConfig{
			Name: fmt.Sprintf("n%d", i),
			System: core.SolidStateConfig{
				DRAMBytes:       bc.dramMB << 20,
				FlashBytes:      bc.flashMB << 20,
				BufferBytes:     bc.bufferMB << 20,
				IdleCleanBlocks: bc.idleClean,
				Engine:          bc.engine,
			},
		})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		nodes[i], privs[i] = node, priv
	}
	// The router's own telemetry (replica-latency fan-out, fleet gauges,
	// cluster request spans) lives on the ambient observer, and the event
	// journal is shared with node 0's observer — the one the ops surface
	// and flight recorder are bound to — so /debug/events and incident
	// dumps both see the control-plane history.
	el := obs.NewEventLog(0)
	bc.obs.SetEventLog(el)
	privs[0].SetEventLog(el)
	cl, err := cluster.New(nodes, cluster.Config{Obs: bc.obs})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	merge := func() {
		// Stamp each node's series with its node label at merge time, so
		// identically-named per-node series survive into the merged
		// registry (and the -metrics dump ssmtrace fleet reads) instead of
		// colliding.
		for i, priv := range privs {
			bc.obs.MergeLabeled(priv, obs.Labels{"node": nodes[i].Name})
		}
	}
	admin := server.NewAdmin(nodes[0].Srv, privs[0])
	// /metrics serves the live merged fleet snapshot (per-node series
	// under their node label, assembled at scrape time), and /debug/fleet
	// the rollup computed from the same snapshot.
	admin.SetSnapshotSource(cl.FleetSnapshot)
	admin.SetFleet(func() (any, error) { return cluster.FleetFromSnapshot(cl.FleetSnapshot()) })
	return server.NewTCP(cl), admin, merge, privs[0], nil
}

// serve listens until SIGINT/SIGTERM, then drains: in-flight requests
// complete, a final sync runs, and the process exits 0.
func serve(tcp *server.TCP, admin *server.Admin, addr, adminAddr string) error {
	if err := tcp.Listen(addr); err != nil {
		return err
	}
	if adminAddr != "" {
		if err := admin.Listen(adminAddr); err != nil {
			return err
		}
		defer admin.Shutdown()
		fmt.Printf("ssmserve: ops surface on http://%s/metrics\n", admin.Addr())
	}
	fmt.Printf("ssmserve: listening on %s\n", tcp.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("ssmserve: draining")
	admin.SetDraining(true)
	if err := tcp.Shutdown(); err != nil {
		return err
	}
	if fr := obs.Default().FlightRecorder(); fr != nil {
		fr.Dump("drain")
	}
	fmt.Println("ssmserve: drained, all data stable")
	return nil
}

type smokeConfig struct {
	clients, ops int
	seed         int64
	writeRatio   float64
	nodes        int
}

// smoke serves on a loopback port and drives every generated client
// over a real TCP connection from its own goroutine. Overload sheds are
// tolerated (they are the admission control working); anything else
// fails the run. The ops surface is exercised as part of the gate: the
// run scrapes /metrics, validates the exposition, and verifies the
// drain-time flight record loads back.
func smoke(tcp *server.TCP, admin *server.Admin, sc smokeConfig) error {
	if err := tcp.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	if err := admin.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	defer admin.Shutdown()
	addr := tcp.Addr().String()
	fmt.Printf("ssmserve: smoke on %s, %d clients x %d ops, seed %d\n",
		addr, sc.clients, sc.ops, sc.seed)

	w := sc.writeRatio
	cfg := workload.Config{
		Seed:         sc.seed,
		Clients:      sc.clients,
		OpsPerClient: sc.ops,
		Mix:          workload.Mix{Read: 1 - w, Write: w * 0.9, Truncate: w * 0.02, Delete: w * 0.03, Sync: w * 0.05},
		Popularity:   workload.Zipf,
	}

	var wg sync.WaitGroup
	errs := make([]error, sc.clients)
	done := make([]int, sc.clients)
	shed := make([]int, sc.clients)
	for i := 0; i < sc.clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			done[id], shed[id], errs[id] = smokeClient(addr, cfg, id)
		}(i)
	}
	wg.Wait()

	// Scrape the ops surface while the server is still live, before the
	// drain tears anything down — exactly what a monitoring agent sees.
	if err := scrapeMetrics(admin.Addr().String(), sc.nodes); err != nil {
		return fmt.Errorf("smoke /metrics: %w", err)
	}
	if err := scrapeHealth(admin.Addr().String()); err != nil {
		return fmt.Errorf("smoke /debug/health: %w", err)
	}
	if sc.nodes > 1 {
		if err := scrapeFleet(admin.Addr().String(), sc.nodes); err != nil {
			return fmt.Errorf("smoke /debug/fleet: %w", err)
		}
		if err := scrapeEvents(admin.Addr().String()); err != nil {
			return fmt.Errorf("smoke /debug/events: %w", err)
		}
	}
	admin.SetDraining(true)
	if err := tcp.Shutdown(); err != nil {
		return err
	}
	if fr := obs.Default().FlightRecorder(); fr != nil {
		path, err := fr.Dump("drain")
		if err != nil {
			return fmt.Errorf("smoke flight dump: %w", err)
		}
		rec, err := obs.ReadFlightRecord(path)
		if err != nil {
			return fmt.Errorf("smoke flight record does not load: %w", err)
		}
		fmt.Printf("ssmserve: flight record %q, %d spans, %d metric samples\n",
			rec.Reason, len(rec.Spans), len(rec.Metrics.Metrics))
	}
	var completed, sheds int
	for i := range errs {
		if errs[i] != nil {
			return fmt.Errorf("smoke client %d: %w", i, errs[i])
		}
		completed += done[i]
		sheds += shed[i]
	}
	fmt.Printf("ssmserve: smoke ok, %d requests completed, %d shed, clean drain\n", completed, sheds)
	return nil
}

// scrapeMetrics fetches /metrics over HTTP and validates the Prometheus
// text exposition, requiring the series an operator dashboard depends
// on. A malformed line or a missing series fails the smoke run. In
// cluster mode (nodes > 1) the scrape additionally requires the router's
// replica-latency fan-out series and a node-labelled per-node sample —
// the regression the fleet snapshot exists to prevent is identically
// named node series collapsing into one.
func scrapeMetrics(adminAddr string, nodes int) error {
	resp, err := http.Get("http://" + adminAddr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	required := []string{
		"requests_total",
		"serve_latency_breakdown",
		"free_blocks",
		"buffer_occupancy",
		// Wear-attribution surface: cause-labelled flash accounting,
		// write amplification, the per-bank wear distribution and the
		// windowed burn rates the health report divides into the budget.
		"flash_bytes_programmed_total",
		"erases_total",
		"write_amplification",
		"wear_erase_count",
		"wear_blocks_le",
		"erase_rate_per_s",
	}
	if nodes > 1 {
		required = append(required,
			"serve_replica_latency",
			"cluster_node_up",
			"cluster_ring_share_ppm",
			"cluster_under_replicated_keys",
		)
	}
	if err := obs.CheckExposition(body, required); err != nil {
		return err
	}
	if nodes > 1 {
		for i := 0; i < nodes; i++ {
			label := fmt.Sprintf("node=%q", fmt.Sprintf("n%d", i))
			if !strings.Contains(string(body), label) {
				return fmt.Errorf("exposition has no %s-labelled series", label)
			}
		}
	}
	fmt.Printf("ssmserve: /metrics ok, %d bytes, required series present\n", len(body))
	return nil
}

// scrapeFleet fetches the cluster-wide /debug/fleet rollup and sanity
// checks it: every configured node present and up (smoke kills nobody).
func scrapeFleet(adminAddr string, nodes int) error {
	resp, err := http.Get("http://" + adminAddr + "/debug/fleet")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	var rep cluster.FleetReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return err
	}
	if len(rep.Nodes) != nodes {
		return fmt.Errorf("fleet report has %d nodes, want %d", len(rep.Nodes), nodes)
	}
	for _, n := range rep.Nodes {
		if !n.Up {
			return fmt.Errorf("fleet report says node %s is down", n.Name)
		}
	}
	fmt.Printf("ssmserve: /debug/fleet ok, %d nodes up, fleet lifetime %s\n",
		len(rep.Nodes), rep.Lifetime)
	return nil
}

// scrapeEvents fetches the /debug/events journal and verifies it parses
// as an event stream (it may legitimately be empty — a healthy smoke run
// triggers no control-plane transitions).
func scrapeEvents(adminAddr string) error {
	resp, err := http.Get("http://" + adminAddr + "/debug/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	events, _, err := obs.LoadEvents(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("ssmserve: /debug/events ok, %d events\n", len(events))
	return nil
}

// scrapeHealth fetches the SMART-style /debug/health report and sanity
// checks the document an operator (or ssmtrace health) would read.
func scrapeHealth(adminAddr string) error {
	resp, err := http.Get("http://" + adminAddr + "/debug/health")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	var rep flash.HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return err
	}
	if rep.Device != "flash" || rep.Blocks <= 0 || rep.EnduranceCycles <= 0 {
		return fmt.Errorf("implausible health report: %+v", rep)
	}
	fmt.Printf("ssmserve: /debug/health ok, life used %.4f%%, lifetime %s\n",
		rep.LifeUsedPct, rep.Lifetime)
	return nil
}

// smokeClient replays one generated stream over TCP. Reads against keys
// nothing has written yet come back notfound; that (and overload sheds)
// is expected, every other error is fatal.
func smokeClient(addr string, cfg workload.Config, id int) (completed, shed int, err error) {
	cl, err := server.Dial(addr, fmt.Sprintf("smoke%d", id))
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	gen := workload.NewClient(cfg, id)
	for {
		op, ok := gen.Next()
		if !ok {
			return completed, shed, nil
		}
		var opErr error
		switch op.Kind {
		case workload.Read:
			_, opErr = cl.Get(op.Key, op.Offset, int64(op.Size))
		case workload.Write:
			data := make([]byte, op.Size)
			for i := range data {
				data[i] = byte(op.Key + uint64(i))
			}
			_, opErr = cl.Put(op.Key, op.Offset, data)
		case workload.Truncate:
			opErr = cl.Truncate(op.Key, int64(op.Size))
		case workload.Delete:
			opErr = cl.Delete(op.Key)
		case workload.Sync:
			_, opErr = cl.Sync()
		}
		switch {
		case opErr == nil:
			completed++
		case errors.Is(opErr, server.ErrOverloaded):
			shed++
		case errors.Is(opErr, server.ErrNotFound):
			// a key this client never wrote (or deleted): expected
		default:
			return completed, shed, fmt.Errorf("op %d (%v key %d): %w", op.Seq, op.Kind, op.Key, opErr)
		}
	}
}
