// Command ssmtrace generates and inspects the synthetic workload traces
// that drive the experiments.
//
// Usage:
//
//	ssmtrace gen [-kind baker|pim|blocks] [-minutes M] [-seed N] [-o FILE]
//	ssmtrace stats [-metrics FILE] [FILE]
//
// Both subcommands accept -cpuprofile/-memprofile for pprof profiles.
// Generated traces use the text format of internal/trace: one operation
// per line, "<time-ns> <kind> <file> <offset> <size>".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ssmobile/internal/prof"
	"ssmobile/internal/sim"
	"ssmobile/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var run func([]string, *profFlags) error
	switch os.Args[1] {
	case "gen":
		run = gen
	case "stats":
		run = stats
	default:
		usage()
	}

	var pf profFlags
	if err := runProfiled(os.Args[2:], &pf, run); err != nil {
		fmt.Fprintln(os.Stderr, "ssmtrace:", err)
		os.Exit(1)
	}
}

// profFlags carries the -cpuprofile/-memprofile values every subcommand
// registers on its own FlagSet.
type profFlags struct {
	cpu, mem string
}

func (p *profFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.mem, "memprofile", "", "write a heap profile to this file at exit")
}

// runProfiled runs a subcommand and writes any requested profiles before
// returning, whether the subcommand succeeded or not.
func runProfiled(args []string, pf *profFlags, run func([]string, *profFlags) error) error {
	err := run(args, pf)
	// pf is populated by the subcommand's flag parse inside run.
	if herr := prof.WriteHeap(pf.mem); herr != nil && err == nil {
		err = herr
	}
	return err
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ssmtrace gen [-kind baker|pim|blocks] [-minutes M] [-seed N] [-o FILE]")
	fmt.Fprintln(os.Stderr, "       ssmtrace stats [-metrics FILE] [FILE]")
	os.Exit(2)
}

func gen(args []string, pf *profFlags) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "baker", "workload kind: baker (office), pim (datebook), blocks (raw block)")
	minutes := fs.Int("minutes", 30, "trace duration in virtual minutes (baker)")
	seed := fs.Int64("seed", 1993, "generator seed")
	ops := fs.Int("ops", 100000, "operation count (blocks)")
	blocks := fs.Int("blocks", 4096, "logical block count (blocks)")
	skew := fs.Float64("skew", 1.2, "zipf skew, 0 for uniform (blocks)")
	readFrac := fs.Float64("reads", 0.5, "read fraction (blocks)")
	out := fs.String("o", "", "output file (default stdout)")
	pf.register(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	stopCPU, err := prof.StartCPU(pf.cpu)
	if err != nil {
		return err
	}
	defer stopCPU()

	var tr *trace.Trace
	switch *kind {
	case "baker":
		tr, err = trace.GenerateBaker(trace.DefaultBaker(sim.Duration(*minutes)*sim.Minute, *seed))
	case "pim":
		tr, err = trace.GeneratePIM(trace.DefaultPIM(sim.Duration(*minutes)*sim.Minute, *seed))
	case "blocks":
		tr, err = trace.GenerateBlocks(trace.BlockConfig{
			Ops: *ops, Blocks: *blocks, BlockSize: 4096,
			ReadFrac: *readFrac, Skew: *skew, Seed: *seed,
		})
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err = tr.WriteTo(w)
	return err
}

func stats(args []string, pf *profFlags) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	metricsOut := fs.String("metrics", "", "also write the stats as JSON to this file")
	pf.register(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	stopCPU, err := prof.StartCPU(pf.cpu)
	if err != nil {
		return err
	}
	defer stopCPU()

	var r io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	tr, err := trace.ReadTrace(r)
	if err != nil {
		return err
	}
	s := tr.Stats()
	fmt.Printf("operations:    %d\n", s.Ops)
	fmt.Printf("  creates:     %d\n", s.Creates)
	fmt.Printf("  writes:      %d (%.1f MB)\n", s.Writes, float64(s.BytesWritten)/(1<<20))
	fmt.Printf("  reads:       %d (%.1f MB)\n", s.Reads, float64(s.BytesRead)/(1<<20))
	fmt.Printf("  deletes:     %d\n", s.Deletes)
	fmt.Printf("unique files:  %d\n", s.UniqueFiles)
	fmt.Printf("duration:      %v\n", s.Duration)
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
