// Command ssmtrace generates and inspects the synthetic workload traces
// that drive the experiments.
//
// Usage:
//
//	ssmtrace gen [-kind baker|blocks] [-minutes M] [-seed N] [-o FILE]
//	ssmtrace stats [-metrics FILE] [FILE]
//
// Generated traces use the text format of internal/trace: one operation
// per line, "<time-ns> <kind> <file> <offset> <size>".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ssmobile/internal/sim"
	"ssmobile/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "stats":
		stats(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ssmtrace gen [-kind baker|blocks] [-minutes M] [-seed N] [-o FILE]")
	fmt.Fprintln(os.Stderr, "       ssmtrace stats [-metrics FILE] [FILE]")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "baker", "workload kind: baker (office), pim (datebook), blocks (raw block)")
	minutes := fs.Int("minutes", 30, "trace duration in virtual minutes (baker)")
	seed := fs.Int64("seed", 1993, "generator seed")
	ops := fs.Int("ops", 100000, "operation count (blocks)")
	blocks := fs.Int("blocks", 4096, "logical block count (blocks)")
	skew := fs.Float64("skew", 1.2, "zipf skew, 0 for uniform (blocks)")
	readFrac := fs.Float64("reads", 0.5, "read fraction (blocks)")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	var tr *trace.Trace
	var err error
	switch *kind {
	case "baker":
		tr, err = trace.GenerateBaker(trace.DefaultBaker(sim.Duration(*minutes)*sim.Minute, *seed))
	case "pim":
		tr, err = trace.GeneratePIM(trace.DefaultPIM(sim.Duration(*minutes)*sim.Minute, *seed))
	case "blocks":
		tr, err = trace.GenerateBlocks(trace.BlockConfig{
			Ops: *ops, Blocks: *blocks, BlockSize: 4096,
			ReadFrac: *readFrac, Skew: *skew, Seed: *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "ssmtrace: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmtrace:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssmtrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := tr.WriteTo(w); err != nil {
		fmt.Fprintln(os.Stderr, "ssmtrace:", err)
		os.Exit(1)
	}
}

func stats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	metricsOut := fs.String("metrics", "", "also write the stats as JSON to this file")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	var r io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssmtrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	tr, err := trace.ReadTrace(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmtrace:", err)
		os.Exit(1)
	}
	s := tr.Stats()
	fmt.Printf("operations:    %d\n", s.Ops)
	fmt.Printf("  creates:     %d\n", s.Creates)
	fmt.Printf("  writes:      %d (%.1f MB)\n", s.Writes, float64(s.BytesWritten)/(1<<20))
	fmt.Printf("  reads:       %d (%.1f MB)\n", s.Reads, float64(s.BytesRead)/(1<<20))
	fmt.Printf("  deletes:     %d\n", s.Deletes)
	fmt.Printf("unique files:  %d\n", s.UniqueFiles)
	fmt.Printf("duration:      %v\n", s.Duration)
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssmtrace:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "ssmtrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ssmtrace:", err)
			os.Exit(1)
		}
	}
}
