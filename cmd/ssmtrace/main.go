// Command ssmtrace generates and inspects the synthetic workload traces
// that drive the experiments.
//
// Usage:
//
//	ssmtrace gen [-kind baker|pim|blocks] [-minutes M] [-seed N] [-o FILE]
//	ssmtrace stats [-metrics FILE] [FILE]
//	ssmtrace attribute [-top N] [-metrics FILE] [FILE]
//	ssmtrace wear [-device NAME] [FILE]
//	ssmtrace health [-device NAME] [-json] [FILE]
//	ssmtrace events [FILE]
//	ssmtrace fleet [-json] [FILE]
//
// All subcommands accept -cpuprofile/-memprofile for pprof profiles.
// Generated traces use the text format of internal/trace: one operation
// per line, "<time-ns> <kind> <file> <offset> <size>".
//
// attribute reads a span trace — either the JSONL sink written by
// -trace flags across the tools, or a flight-recorder dump from
// ssmserve — reconstructs each request's span tree, and prints the
// per-stage latency-attribution table (queue, buffer, flush, flash,
// clean, other) plus the -top slowest requests with their breakdowns.
//
// wear and health read a metrics snapshot — the JSON a -metrics flag
// dumps anywhere in the tools, or a /metrics-equivalent snapshot — and
// render the flash device's erase-count heatmap (per bank, bucketed) or
// its SMART-style health report: endurance budget, wear spread, windowed
// burn rate and the remaining lifetime at that rate. The health numbers
// are the same pure function of the snapshot the server's /debug/health
// serves live, so the two can never disagree.
//
// events replays a recorded cluster event journal — the JSONL stream
// /debug/events serves, or a flight-recorder dump (whose "events" field
// carries the journal) — as the same timeline table experiment E16
// prints. fleet reads a node-labelled metrics snapshot (the -metrics
// dump of a cluster-mode ssmserve run) and renders the cluster-wide
// health rollup /debug/fleet serves live, through the same
// cluster.FleetFromSnapshot pure function.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"ssmobile/internal/cluster"
	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/prof"
	"ssmobile/internal/sim"
	"ssmobile/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var run func([]string, *profFlags) error
	switch os.Args[1] {
	case "gen":
		run = gen
	case "stats":
		run = stats
	case "attribute":
		run = attribute
	case "wear":
		run = wear
	case "health":
		run = health
	case "events":
		run = events
	case "fleet":
		run = fleet
	default:
		usage()
	}

	var pf profFlags
	if err := runProfiled(os.Args[2:], &pf, run); err != nil {
		fmt.Fprintln(os.Stderr, "ssmtrace:", err)
		os.Exit(1)
	}
}

// profFlags carries the -cpuprofile/-memprofile values every subcommand
// registers on its own FlagSet.
type profFlags struct {
	cpu, mem string
}

func (p *profFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.mem, "memprofile", "", "write a heap profile to this file at exit")
}

// runProfiled runs a subcommand and writes any requested profiles before
// returning, whether the subcommand succeeded or not.
func runProfiled(args []string, pf *profFlags, run func([]string, *profFlags) error) error {
	err := run(args, pf)
	// pf is populated by the subcommand's flag parse inside run.
	if herr := prof.WriteHeap(pf.mem); herr != nil && err == nil {
		err = herr
	}
	return err
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ssmtrace gen [-kind baker|pim|blocks] [-minutes M] [-seed N] [-o FILE]")
	fmt.Fprintln(os.Stderr, "       ssmtrace stats [-metrics FILE] [FILE]")
	fmt.Fprintln(os.Stderr, "       ssmtrace attribute [-top N] [-metrics FILE] [FILE]")
	fmt.Fprintln(os.Stderr, "       ssmtrace wear [-device NAME] [FILE]")
	fmt.Fprintln(os.Stderr, "       ssmtrace health [-device NAME] [-json] [FILE]")
	fmt.Fprintln(os.Stderr, "       ssmtrace events [FILE]")
	fmt.Fprintln(os.Stderr, "       ssmtrace fleet [-json] [FILE]")
	os.Exit(2)
}

// readSnapshot loads the metrics snapshot from the first positional
// argument, or stdin when none is given.
func readSnapshot(fs *flag.FlagSet) (obs.Snapshot, error) {
	var r io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return obs.Snapshot{}, err
		}
		defer f.Close()
		r = f
	}
	return obs.ReadSnapshot(r)
}

// wear renders the per-bank erase-count heatmap from a metrics snapshot.
func wear(args []string, pf *profFlags) error {
	fs := flag.NewFlagSet("wear", flag.ExitOnError)
	device := fs.String("device", "flash", "flash device (the MeterCategory label)")
	pf.register(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	stopCPU, err := prof.StartCPU(pf.cpu)
	if err != nil {
		return err
	}
	defer stopCPU()

	snap, err := readSnapshot(fs)
	if err != nil {
		return err
	}
	return flash.RenderWearHeatmap(os.Stdout, snap, *device)
}

// health prints the SMART-style device-health report from a metrics
// snapshot; -json emits the same JSON document /debug/health serves.
func health(args []string, pf *profFlags) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	device := fs.String("device", "flash", "flash device (the MeterCategory label)")
	asJSON := fs.Bool("json", false, "emit the report as JSON (the /debug/health document)")
	pf.register(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	stopCPU, err := prof.StartCPU(pf.cpu)
	if err != nil {
		return err
	}
	defer stopCPU()

	snap, err := readSnapshot(fs)
	if err != nil {
		return err
	}
	rep, err := flash.HealthFromSnapshot(snap, *device)
	if err != nil {
		return err
	}
	if *asJSON {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	rep.Fprint(os.Stdout)
	return nil
}

// events replays a recorded cluster event journal (the /debug/events
// JSONL stream, or a flight-recorder dump) as the E16 timeline table.
func events(args []string, pf *profFlags) error {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	pf.register(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	stopCPU, err := prof.StartCPU(pf.cpu)
	if err != nil {
		return err
	}
	defer stopCPU()

	var r io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	evs, dropped, err := obs.LoadEvents(r)
	if err != nil {
		return err
	}
	obs.FprintEvents(os.Stdout, evs, dropped)
	return nil
}

// fleet renders the cluster-wide health rollup from a node-labelled
// metrics snapshot; -json emits the same document /debug/fleet serves.
func fleet(args []string, pf *profFlags) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON (the /debug/fleet document)")
	pf.register(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	stopCPU, err := prof.StartCPU(pf.cpu)
	if err != nil {
		return err
	}
	defer stopCPU()

	snap, err := readSnapshot(fs)
	if err != nil {
		return err
	}
	rep, err := cluster.FleetFromSnapshot(snap)
	if err != nil {
		return err
	}
	if *asJSON {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	rep.Fprint(os.Stdout)
	return nil
}

func gen(args []string, pf *profFlags) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "baker", "workload kind: baker (office), pim (datebook), blocks (raw block)")
	minutes := fs.Int("minutes", 30, "trace duration in virtual minutes (baker)")
	seed := fs.Int64("seed", 1993, "generator seed")
	ops := fs.Int("ops", 100000, "operation count (blocks)")
	blocks := fs.Int("blocks", 4096, "logical block count (blocks)")
	skew := fs.Float64("skew", 1.2, "zipf skew, 0 for uniform (blocks)")
	readFrac := fs.Float64("reads", 0.5, "read fraction (blocks)")
	out := fs.String("o", "", "output file (default stdout)")
	pf.register(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	stopCPU, err := prof.StartCPU(pf.cpu)
	if err != nil {
		return err
	}
	defer stopCPU()

	var tr *trace.Trace
	switch *kind {
	case "baker":
		tr, err = trace.GenerateBaker(trace.DefaultBaker(sim.Duration(*minutes)*sim.Minute, *seed))
	case "pim":
		tr, err = trace.GeneratePIM(trace.DefaultPIM(sim.Duration(*minutes)*sim.Minute, *seed))
	case "blocks":
		tr, err = trace.GenerateBlocks(trace.BlockConfig{
			Ops: *ops, Blocks: *blocks, BlockSize: 4096,
			ReadFrac: *readFrac, Skew: *skew, Seed: *seed,
		})
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err = tr.WriteTo(w)
	return err
}

// attribute reconstructs request span trees from a recorded trace and
// prints where each request's virtual time went.
func attribute(args []string, pf *profFlags) error {
	fs := flag.NewFlagSet("attribute", flag.ExitOnError)
	top := fs.Int("top", 5, "also list the N slowest requests with their breakdowns")
	metricsOut := fs.String("metrics", "", "also write the attributions as JSON to this file")
	pf.register(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	stopCPU, err := prof.StartCPU(pf.cpu)
	if err != nil {
		return err
	}
	defer stopCPU()

	var r io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	spans, dropped, err := obs.LoadSpans(r)
	if err != nil {
		return err
	}
	reqs, st := obs.Attribute(spans)
	fmt.Printf("spans:         %d (%d dropped at record time)\n", len(spans), dropped)
	fmt.Printf("requests:      %d\n", st.Requests)
	fmt.Printf("background:    %d spans outside any request\n", st.Background)
	if st.Orphans > 0 {
		fmt.Printf("orphans:       %d spans with no surviving root (ring overwrote it)\n", st.Orphans)
	}
	if len(reqs) == 0 {
		return nil
	}

	var total obs.Breakdown
	var cleans int
	for _, req := range reqs {
		total.Add(req.Breakdown)
		cleans += req.InducedCleans
	}
	sum := total.Total()
	fmt.Printf("induced cleans: %d\n", cleans)
	fmt.Printf("total attributed virtual time: %v\n", sum)
	for _, stage := range obs.BreakdownStages {
		d := total.Stage(stage)
		pct := 0.0
		if sum > 0 {
			pct = 100 * float64(d) / float64(sum)
		}
		fmt.Printf("  %-8s %12v  %5.1f%%\n", stage, d, pct)
	}

	if *top > 0 {
		sorted := make([]obs.RequestAttribution, len(reqs))
		copy(sorted, reqs)
		sort.Slice(sorted, func(i, j int) bool {
			return sorted[i].Breakdown.Total() > sorted[j].Breakdown.Total()
		})
		if len(sorted) > *top {
			sorted = sorted[:*top]
		}
		fmt.Printf("slowest %d requests:\n", len(sorted))
		for _, req := range sorted {
			fmt.Printf("  %s/%s @%v total=%v spans=%d cleans=%d:",
				req.Root.Layer, req.Root.Op, req.Root.Start, req.Breakdown.Total(), req.Spans, req.InducedCleans)
			for _, stage := range obs.BreakdownStages {
				if d := req.Breakdown.Stage(stage); d > 0 {
					fmt.Printf(" %s=%v", stage, d)
				}
			}
			fmt.Println()
		}
	}

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Stats    obs.AttributionStats     `json:"stats"`
			Requests []obs.RequestAttribution `json:"requests"`
		}{st, reqs}); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

func stats(args []string, pf *profFlags) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	metricsOut := fs.String("metrics", "", "also write the stats as JSON to this file")
	pf.register(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	stopCPU, err := prof.StartCPU(pf.cpu)
	if err != nil {
		return err
	}
	defer stopCPU()

	var r io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	tr, err := trace.ReadTrace(r)
	if err != nil {
		return err
	}
	s := tr.Stats()
	fmt.Printf("operations:    %d\n", s.Ops)
	fmt.Printf("  creates:     %d\n", s.Creates)
	fmt.Printf("  writes:      %d (%.1f MB)\n", s.Writes, float64(s.BytesWritten)/(1<<20))
	fmt.Printf("  reads:       %d (%.1f MB)\n", s.Reads, float64(s.BytesRead)/(1<<20))
	fmt.Printf("  deletes:     %d\n", s.Deletes)
	fmt.Printf("unique files:  %d\n", s.UniqueFiles)
	fmt.Printf("duration:      %v\n", s.Duration)
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
