// Package ssmobile is a reproduction of "Operating System Implications of
// Solid-State Mobile Computers" (Cáceres, Douglis, Li and Marsh, HotOS-IV
// 1993): a complete simulated storage organisation for a diskless mobile
// computer — battery-backed DRAM primary storage and direct-mapped flash
// secondary storage in a single-level store — together with the operating
// system layers the paper prescribes and the conventional disk
// organisation it argues against.
//
// The public surface lives in the example programs (examples/), the
// experiment driver (cmd/ssmsim), the trace tool (cmd/ssmtrace), the
// object-storage service (cmd/ssmserve), and the benchmarks in
// bench_test.go. The implementation packages are under
// internal/; see DESIGN.md for the system inventory and EXPERIMENTS.md for
// the paper-versus-measured record.
package ssmobile
