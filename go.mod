module ssmobile

go 1.22
